// Tests for the deterministic RNG: reproducibility, distribution sanity.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace bglpred {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b();
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 5);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 5);
    saw_lo |= v == -2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(2, 1), InvalidArgument);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(10.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.3);
}

TEST(RngTest, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgument);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonSmallLambdaMean) {
  Rng rng(23);
  std::int64_t total = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    total += rng.poisson(3.5);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeLambdaMean) {
  Rng rng(29);
  std::int64_t total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    total += rng.poisson(200.0);
  }
  EXPECT_NEAR(static_cast<double>(total) / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexRejectsBadInput) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({}), InvalidArgument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), InvalidArgument);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // The child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent() == child();
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, LognormalPositive) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(1.0, 0.5), 0.0);
  }
}

}  // namespace
}  // namespace bglpred
