#include "hot/sink.hpp"
// bgl:hot-begin(pump-demo)
void pump(Sink& sink, std::vector<int> values) {
  std::ostringstream line;
  for (int v : values) {
    line << v;
  }
  sink.write(line);
}
// bgl:hot-end
