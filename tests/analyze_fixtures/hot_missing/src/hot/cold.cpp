#include "hot/sink.hpp"
void cold(Sink& sink) { sink.flush(); }
