#pragma once
#include "m/b.hpp"
inline int a() { return b() + 1; }
