#include "hot/sink.hpp"
// bgl:hot-begin(clean-demo)
void append(Sink& sink, const Payload& payload) {
  sink.reserve_one();  // amortized growth happens outside the region
  // bgl-analyze: allow(hot-alloc) -- one-time arena warm-up, not per record
  sink.arena = new Arena(payload.size());
  sink.push(payload);
}
// bgl:hot-end
