// Every opcode, tag, and metric name appears here, next to a dump_json
// assertion — the clean counterpart of drift_gaps.
void test_everything() {
  expect(roundtrip(MessageType::kPing));
  expect(roundtrip(MessageType::kPong));
  expect(blob.substr(0, 5) == "DEMO1");
  const std::string json = registry.dump_json();
  expect(json.contains("net.pings"));
  expect(json.contains("net.errors"));
}
