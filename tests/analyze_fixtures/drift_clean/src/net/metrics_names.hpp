#pragma once
// bgl:metric-names-begin
constexpr const char* kNetCounterNames[] = {"net.errors"};
// bgl:metric-names-end
