#include "net/proto.hpp"
void save(std::ostream& os, Registry& registry) {
  wire::write_tag(os, "DEMO1");
  registry.counter("net.pings").inc();
}
