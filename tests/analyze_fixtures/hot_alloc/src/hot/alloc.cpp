#include "hot/widget.hpp"
// bgl:hot-begin(alloc-demo)
void consume(const Widget& in) {
  Widget* copy = new Widget(in);
  auto owned = std::make_unique<Widget>(in);
  copy->use(owned.get());
}
// bgl:hot-end
