#pragma once
inline int other() { return 2; }
