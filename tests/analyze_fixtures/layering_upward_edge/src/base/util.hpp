#pragma once
#include "app/logic.hpp"
inline int util() { return logic() + 1; }
