#pragma once
#include "base/other.hpp"
inline int logic() { return other(); }
