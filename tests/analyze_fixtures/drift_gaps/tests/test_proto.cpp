// Covers the first opcode only; the second opcode, the checkpoint tag,
// and both metric names are deliberately absent so the drift rules fire.
void test_ping_roundtrip() {
  expect(roundtrip(MessageType::kPing));
  expect(registry.dump_json() == "{}");
}
