#pragma once
enum class MessageType : unsigned char {
  kPing = 1,
  kPong = 2,
};
