#pragma once
#include "base/util.hpp"
inline int logic() { return util(); }
