#pragma once
inline int util() { return 1; }
