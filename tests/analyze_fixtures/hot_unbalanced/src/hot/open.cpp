#include "hot/sink.hpp"
// bgl:hot-begin(never-closed)
void drain(Sink& sink) { sink.flush(); }
