#include "hot/record.hpp"
// bgl:hot-begin(fmt-demo)
void tag_record(Record& rec, int id) {
  rec.label = std::to_string(id);
  if (rec.label.empty()) {
    throw BadRecord("empty label");
  }
}
// bgl:hot-end
