#pragma once
inline int logic() { return 2; }
