// Tests for the ThreePhasePredictor facade and the online engine.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "core/online.hpp"
#include "core/three_phase.hpp"
#include "simgen/generator.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

TEST(ThreePhaseTest, MethodNames) {
  EXPECT_STREQ(to_string(Method::kStatistical), "statistical");
  EXPECT_STREQ(to_string(Method::kRule), "rule");
  EXPECT_STREQ(to_string(Method::kMeta), "meta");
  EXPECT_STREQ(to_string(Method::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(Method::kEveryFailure), "every-failure");
}

TEST(ThreePhaseTest, MakePredictorBuildsEveryMethod) {
  const ThreePhasePredictor tpp;
  for (const Method m : {Method::kStatistical, Method::kRule, Method::kMeta,
                         Method::kPeriodic, Method::kEveryFailure}) {
    const PredictorPtr p = tpp.make_predictor(m);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), to_string(m));
  }
}

TEST(ThreePhaseTest, RejectsTooFewFolds) {
  ThreePhaseOptions opt;
  opt.cv_folds = 1;
  EXPECT_THROW(ThreePhasePredictor{opt}, InvalidArgument);
}

TEST(ThreePhaseTest, EndToEndOnGeneratedLog) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.04);
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  opt.cv_folds = 5;
  const ThreePhasePredictor tpp(opt);
  const PreprocessStats p1 = tpp.run_phase1(g.log);
  EXPECT_GT(p1.unique_fatal_events, 50u);
  EXPECT_LT(p1.unique_events, p1.raw_records);

  const CvResult rule = tpp.evaluate(g.log, Method::kRule);
  const CvResult meta = tpp.evaluate(g.log, Method::kMeta);
  // Core qualitative claims of the paper on any calibrated log:
  // the meta-learner's recall beats the rule base's, and everything is a
  // valid probability.
  EXPECT_GE(meta.macro_recall, rule.macro_recall);
  for (const CvResult* r : {&rule, &meta}) {
    EXPECT_GE(r->macro_precision, 0.0);
    EXPECT_LE(r->macro_precision, 1.0);
    EXPECT_GE(r->macro_recall, 0.0);
    EXPECT_LE(r->macro_recall, 1.0);
  }
}

TEST(OnlineEngineTest, DeduplicatesAndForwards) {
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  const ThreePhasePredictor tpp(opt);
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));

  const SubcategoryInfo& torus =
      catalog().info(catalog().find("torusFailure"));
  RasRecord rec;
  rec.time = 1000;
  rec.job = 5;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
  rec.facility = torus.facility;
  rec.severity = torus.severity;

  // First sighting passes through and (every-failure) warns.
  auto w1 = engine.feed(rec, std::string(torus.phrase) + " seq=1");
  EXPECT_EQ(w1.size(), 1u);
  // Duplicate within the threshold is swallowed.
  rec.time = 1100;
  auto w2 = engine.feed(rec, std::string(torus.phrase) + " seq=1");
  EXPECT_TRUE(w2.empty());
  EXPECT_EQ(engine.stats().deduplicated, 1u);
  // Beyond the threshold it is a fresh event again.
  rec.time = 1100 + 400;
  auto w3 = engine.feed(rec, std::string(torus.phrase) + " seq=2");
  EXPECT_EQ(w3.size(), 1u);
  EXPECT_EQ(engine.stats().raw_records, 3u);
  EXPECT_EQ(engine.stats().forwarded, 2u);
  EXPECT_EQ(engine.stats().warnings, 2u);
}

TEST(OnlineEngineTest, ClassifiesFromEntryText) {
  ThreePhaseOptions opt;
  const ThreePhasePredictor tpp(opt);
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  const SubcategoryInfo& cache =
      catalog().info(catalog().find("cacheFailure"));
  RasRecord rec;
  rec.time = 2000;
  rec.location = bgl::Location::make_compute_chip(0, 1, 2, 3);
  rec.facility = cache.facility;
  rec.severity = cache.severity;
  auto w = engine.feed(rec, std::string(cache.phrase) + " bank 3");
  EXPECT_EQ(w.size(), 1u);  // classified fatal -> every-failure warns
}

TEST(OnlineEngineTest, MatchesOfflinePhase1OnReplay) {
  // Streaming dedup must agree with the offline temporal compressor on a
  // spatially-unique stream (one location).
  GeneratedLog g = LogGenerator(SystemProfile::sdsc()).generate(0.01);
  ThreePhaseOptions opt;
  const ThreePhasePredictor tpp(opt);
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  for (const RasRecord& rec : g.log.records()) {
    engine.feed(rec, g.log.text_of(rec));
  }
  // Offline: classify + temporal compression only.
  RasLog offline = std::move(g.log);
  const EventClassifier classifier;
  classifier.classify_all(offline);
  const CompressionResult r = compress_temporal(offline);
  EXPECT_EQ(engine.stats().forwarded, r.output_records);
}

TEST(OnlineEngineTest, RejectsNullPredictor) {
  EXPECT_THROW(OnlineEngine(nullptr), InvalidArgument);
}

TEST(OnlineEngineTest, MalformedRecordsCountedAsDegraded) {
  const ThreePhasePredictor tpp;
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  RasRecord rec;
  rec.time = 1000;
  rec.facility = static_cast<Facility>(200);  // out of enum range
  rec.severity = Severity::kFatal;
  auto w = engine.feed(rec, "mystery event");
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(engine.stats().degraded, 1u);
  EXPECT_EQ(engine.stats().forwarded, 0u);

  rec.facility = Facility::kKernel;
  rec.severity = static_cast<Severity>(99);
  engine.feed(rec, "mystery event");
  EXPECT_EQ(engine.stats().degraded, 2u);

  // A healthy record after the junk still flows normally.
  rec.severity = Severity::kFatal;
  auto ok = engine.feed(rec, "kernel panic");
  EXPECT_EQ(ok.size(), 1u);
  EXPECT_EQ(engine.stats().forwarded, 1u);
  EXPECT_EQ(engine.stats().raw_records, 3u);
}

TEST(OnlineEngineTest, HorizonZeroClampsLateTimestamps) {
  const ThreePhasePredictor tpp;
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  RasRecord rec;
  rec.facility = Facility::kKernel;
  rec.severity = Severity::kFatal;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);

  rec.time = 2000;
  auto w1 = engine.feed(rec, "kernel panic a");
  EXPECT_EQ(w1.size(), 1u);
  // A record from the past: clamped to the high-water mark, counted,
  // and the emitted warning anchors at the clamped time.
  rec.time = 1000;
  rec.location = bgl::Location::make_compute_chip(1, 0, 0, 0);
  auto w2 = engine.feed(rec, "kernel panic b");
  ASSERT_EQ(w2.size(), 1u);
  EXPECT_EQ(w2[0].issued_at, 2000);
  EXPECT_EQ(engine.stats().reordered, 1u);
  EXPECT_EQ(engine.stats().clamped, 1u);
}

TEST(OnlineEngineTest, ReorderBufferRestoresOrder) {
  OnlineOptions opts;
  opts.reorder_horizon = 100;
  const ThreePhasePredictor tpp;
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure), opts);
  RasRecord rec;
  rec.facility = Facility::kKernel;
  rec.severity = Severity::kFatal;

  std::vector<Warning> all;
  const auto feed_at = [&](TimePoint t, std::uint16_t rack) {
    rec.time = t;
    rec.location = bgl::Location::make_compute_chip(rack, 0, 0, 0);
    for (Warning& w : engine.feed(rec, "kernel panic")) {
      all.push_back(std::move(w));
    }
  };
  feed_at(1000, 0);
  feed_at(1050, 1);  // skew: arrives before the 1010 record
  feed_at(1010, 2);
  feed_at(1300, 3);  // advances the watermark, releasing 1000..1050
  for (Warning& w : engine.flush()) {
    all.push_back(std::move(w));
  }
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].issued_at, 1000);
  EXPECT_EQ(all[1].issued_at, 1010);  // repaired order
  EXPECT_EQ(all[2].issued_at, 1050);
  EXPECT_EQ(all[3].issued_at, 1300);
  EXPECT_EQ(engine.stats().reordered, 1u);
  EXPECT_EQ(engine.stats().clamped, 0u);
}

TEST(OnlineEngineTest, CheckpointRoundTripPreservesDedupState) {
  const ThreePhasePredictor tpp;
  const SubcategoryInfo& torus =
      catalog().info(catalog().find("torusFailure"));
  RasRecord rec;
  rec.time = 1000;
  rec.job = 5;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
  rec.facility = torus.facility;
  rec.severity = torus.severity;

  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  engine.feed(rec, std::string(torus.phrase) + " x");

  std::stringstream blob;
  engine.save(blob);
  OnlineEngine restored = OnlineEngine::restore(
      blob, tpp.make_predictor(Method::kEveryFailure));

  // The restored engine remembers the dedup entry: a near-duplicate is
  // swallowed exactly as the original would swallow it.
  rec.time = 1100;
  auto w_restored = restored.feed(rec, std::string(torus.phrase) + " x");
  auto w_original = engine.feed(rec, std::string(torus.phrase) + " x");
  EXPECT_TRUE(w_restored.empty());
  EXPECT_TRUE(w_original.empty());
  EXPECT_EQ(restored.stats().deduplicated, engine.stats().deduplicated);
  EXPECT_EQ(restored.stats().raw_records, engine.stats().raw_records);
}

}  // namespace
}  // namespace bglpred
