// Tests for the ThreePhasePredictor facade and the online engine.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/online.hpp"
#include "core/three_phase.hpp"
#include "simgen/generator.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

TEST(ThreePhaseTest, MethodNames) {
  EXPECT_STREQ(to_string(Method::kStatistical), "statistical");
  EXPECT_STREQ(to_string(Method::kRule), "rule");
  EXPECT_STREQ(to_string(Method::kMeta), "meta");
  EXPECT_STREQ(to_string(Method::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(Method::kEveryFailure), "every-failure");
}

TEST(ThreePhaseTest, MakePredictorBuildsEveryMethod) {
  const ThreePhasePredictor tpp;
  for (const Method m : {Method::kStatistical, Method::kRule, Method::kMeta,
                         Method::kPeriodic, Method::kEveryFailure}) {
    const PredictorPtr p = tpp.make_predictor(m);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), to_string(m));
  }
}

TEST(ThreePhaseTest, RejectsTooFewFolds) {
  ThreePhaseOptions opt;
  opt.cv_folds = 1;
  EXPECT_THROW(ThreePhasePredictor{opt}, InvalidArgument);
}

TEST(ThreePhaseTest, EndToEndOnGeneratedLog) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.04);
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  opt.cv_folds = 5;
  const ThreePhasePredictor tpp(opt);
  const PreprocessStats p1 = tpp.run_phase1(g.log);
  EXPECT_GT(p1.unique_fatal_events, 50u);
  EXPECT_LT(p1.unique_events, p1.raw_records);

  const CvResult rule = tpp.evaluate(g.log, Method::kRule);
  const CvResult meta = tpp.evaluate(g.log, Method::kMeta);
  // Core qualitative claims of the paper on any calibrated log:
  // the meta-learner's recall beats the rule base's, and everything is a
  // valid probability.
  EXPECT_GE(meta.macro_recall, rule.macro_recall);
  for (const CvResult* r : {&rule, &meta}) {
    EXPECT_GE(r->macro_precision, 0.0);
    EXPECT_LE(r->macro_precision, 1.0);
    EXPECT_GE(r->macro_recall, 0.0);
    EXPECT_LE(r->macro_recall, 1.0);
  }
}

TEST(OnlineEngineTest, DeduplicatesAndForwards) {
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  const ThreePhasePredictor tpp(opt);
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));

  const SubcategoryInfo& torus =
      catalog().info(catalog().find("torusFailure"));
  RasRecord rec;
  rec.time = 1000;
  rec.job = 5;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
  rec.facility = torus.facility;
  rec.severity = torus.severity;

  // First sighting passes through and (every-failure) warns.
  auto w1 = engine.feed(rec, std::string(torus.phrase) + " seq=1");
  EXPECT_TRUE(w1.has_value());
  // Duplicate within the threshold is swallowed.
  rec.time = 1100;
  auto w2 = engine.feed(rec, std::string(torus.phrase) + " seq=1");
  EXPECT_FALSE(w2.has_value());
  EXPECT_EQ(engine.stats().deduplicated, 1u);
  // Beyond the threshold it is a fresh event again.
  rec.time = 1100 + 400;
  auto w3 = engine.feed(rec, std::string(torus.phrase) + " seq=2");
  EXPECT_TRUE(w3.has_value());
  EXPECT_EQ(engine.stats().raw_records, 3u);
  EXPECT_EQ(engine.stats().forwarded, 2u);
  EXPECT_EQ(engine.stats().warnings, 2u);
}

TEST(OnlineEngineTest, ClassifiesFromEntryText) {
  ThreePhaseOptions opt;
  const ThreePhasePredictor tpp(opt);
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  const SubcategoryInfo& cache =
      catalog().info(catalog().find("cacheFailure"));
  RasRecord rec;
  rec.time = 2000;
  rec.location = bgl::Location::make_compute_chip(0, 1, 2, 3);
  rec.facility = cache.facility;
  rec.severity = cache.severity;
  auto w = engine.feed(rec, std::string(cache.phrase) + " bank 3");
  EXPECT_TRUE(w.has_value());  // classified fatal -> every-failure warns
}

TEST(OnlineEngineTest, MatchesOfflinePhase1OnReplay) {
  // Streaming dedup must agree with the offline temporal compressor on a
  // spatially-unique stream (one location).
  GeneratedLog g = LogGenerator(SystemProfile::sdsc()).generate(0.01);
  ThreePhaseOptions opt;
  const ThreePhasePredictor tpp(opt);
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  for (const RasRecord& rec : g.log.records()) {
    engine.feed(rec, g.log.text_of(rec));
  }
  // Offline: classify + temporal compression only.
  RasLog offline = std::move(g.log);
  const EventClassifier classifier;
  classifier.classify_all(offline);
  const CompressionResult r = compress_temporal(offline);
  EXPECT_EQ(engine.stats().forwarded, r.output_records);
}

TEST(OnlineEngineTest, RejectsNullPredictor) {
  EXPECT_THROW(OnlineEngine(nullptr), InvalidArgument);
}

}  // namespace
}  // namespace bglpred
