// Tests for common/time: calendar conversion, formatting, parsing.
#include "common/time.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace bglpred {
namespace {

TEST(TimeTest, EpochIsZero) {
  EXPECT_EQ(make_time(1970, 1, 1), 0);
}

TEST(TimeTest, KnownDates) {
  EXPECT_EQ(make_time(1970, 1, 2), kDay);
  EXPECT_EQ(make_time(2000, 1, 1), 946684800);
  EXPECT_EQ(make_time(2005, 1, 21), 1106265600);
  EXPECT_EQ(make_time(2006, 4, 28), 1146182400);
}

TEST(TimeTest, ComponentsRoundTrip) {
  const TimePoint t = make_time(2005, 3, 14, 6, 25, 1);
  EXPECT_EQ(format_time(t), "2005-03-14 06:25:01");
  EXPECT_EQ(parse_time("2005-03-14 06:25:01"), t);
}

TEST(TimeTest, LeapYearFebruary29Valid) {
  EXPECT_NO_THROW(make_time(2004, 2, 29));
  EXPECT_NO_THROW(make_time(2000, 2, 29));  // divisible by 400
}

TEST(TimeTest, NonLeapFebruary29Throws) {
  EXPECT_THROW(make_time(2005, 2, 29), InvalidArgument);
  EXPECT_THROW(make_time(1900, 2, 29), InvalidArgument);  // century rule
}

TEST(TimeTest, OutOfRangeComponentsThrow) {
  EXPECT_THROW(make_time(2005, 0, 1), InvalidArgument);
  EXPECT_THROW(make_time(2005, 13, 1), InvalidArgument);
  EXPECT_THROW(make_time(2005, 4, 31), InvalidArgument);
  EXPECT_THROW(make_time(2005, 1, 1, 24), InvalidArgument);
  EXPECT_THROW(make_time(2005, 1, 1, 0, 60), InvalidArgument);
  EXPECT_THROW(make_time(2005, 1, 1, 0, 0, 60), InvalidArgument);
}

TEST(TimeTest, ParseRejectsGarbage) {
  EXPECT_THROW(parse_time("not a date"), ParseError);
  EXPECT_THROW(parse_time("2005-13-01 00:00:00"), ParseError);
  EXPECT_THROW(parse_time(""), ParseError);
}

TEST(TimeTest, FormatParseRoundTripSweep) {
  // Sweep across month boundaries, leap days, and year ends.
  for (const TimePoint t :
       {make_time(2004, 2, 28, 23, 59, 59), make_time(2004, 2, 29),
        make_time(2004, 12, 31, 23, 59, 59), make_time(2005, 1, 1),
        make_time(2038, 1, 19, 3, 14, 7), make_time(1999, 12, 31)}) {
    EXPECT_EQ(parse_time(format_time(t)), t);
  }
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(0), "0s");
  EXPECT_EQ(format_duration(45), "45s");
  EXPECT_EQ(format_duration(5 * kMinute), "5m");
  EXPECT_EQ(format_duration(kHour + 30 * kMinute), "1h30m");
  EXPECT_EQ(format_duration(2 * kDay + 4 * kHour), "2d4h");
  EXPECT_EQ(format_duration(-90), "-1m30s");
}

TEST(TimeTest, TimeSpanBasics) {
  const TimeSpan span{100, 200};
  EXPECT_EQ(span.length(), 100);
  EXPECT_TRUE(span.contains(100));
  EXPECT_TRUE(span.contains(199));
  EXPECT_FALSE(span.contains(200));
  EXPECT_FALSE(span.contains(99));
  EXPECT_FALSE(span.empty());
  EXPECT_TRUE((TimeSpan{5, 5}).empty());
  EXPECT_TRUE((TimeSpan{7, 3}).empty());
}

}  // namespace
}  // namespace bglpred
