// Tests for ECDF, histogram, summary stats, and inter-arrival analysis.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/interarrival.hpp"
#include "stats/summary.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

// ---- ECDF --------------------------------------------------------------

TEST(EcdfTest, EvaluatesStepFunction) {
  const Ecdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.eval(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.eval(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.eval(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.eval(100.0), 1.0);
}

TEST(EcdfTest, HandlesDuplicates) {
  const Ecdf cdf({2.0, 2.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.eval(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.eval(1.9), 0.0);
}

TEST(EcdfTest, EmptySampleIsZero) {
  const Ecdf cdf({});
  EXPECT_DOUBLE_EQ(cdf.eval(123.0), 0.0);
  EXPECT_EQ(cdf.sample_size(), 0u);
  EXPECT_THROW(cdf.quantile(0.5), InvalidArgument);
}

TEST(EcdfTest, QuantileInvertsEval) {
  const Ecdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_THROW(cdf.quantile(0.0), InvalidArgument);
  EXPECT_THROW(cdf.quantile(1.5), InvalidArgument);
}

TEST(EcdfTest, MonotoneNonDecreasing) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) {
    sample.push_back(rng.exponential(100.0));
  }
  const Ecdf cdf(sample);
  double prev = -1.0;
  for (double x = 0; x < 1000; x += 25) {
    const double v = cdf.eval(x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// ---- Histogram -----------------------------------------------------------

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(HistogramTest, BinRanges) {
  Histogram h(0.0, 10.0, 5);
  const auto [lo, hi] = h.bin_range(2);
  EXPECT_DOUBLE_EQ(lo, 4.0);
  EXPECT_DOUBLE_EQ(hi, 6.0);
  EXPECT_THROW(h.bin_range(5), InvalidArgument);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(HistogramTest, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  const std::string out = h.render();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

// ---- summary ---------------------------------------------------------------

TEST(SummaryTest, BasicMoments) {
  const SummaryStats s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-4);
}

TEST(SummaryTest, EvenCountMedianAverages) {
  const SummaryStats s = summarize({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(SummaryTest, EmptySampleAllZero) {
  const SummaryStats s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(RunningStatsTest, MatchesBatchComputation) {
  Rng rng(9);
  std::vector<double> sample;
  RunningStats running;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sample.push_back(x);
    running.add(x);
  }
  const SummaryStats batch = summarize(sample);
  EXPECT_NEAR(running.mean(), batch.mean, 1e-9);
  EXPECT_NEAR(running.stddev(), batch.stddev, 1e-9);
}

TEST(RunningStatsTest, SingleObservationHasZeroVariance) {
  RunningStats r;
  r.add(5.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
}

// ---- inter-arrival ------------------------------------------------------------

RasLog fatal_log(const std::vector<std::pair<TimePoint, const char*>>& events) {
  RasLog log;
  for (const auto& [t, name] : events) {
    const SubcategoryId id = catalog().find(name);
    EXPECT_NE(id, kUnclassified) << name;
    const SubcategoryInfo& info = catalog().info(id);
    RasRecord rec;
    rec.time = t;
    rec.subcategory = id;
    rec.severity = info.severity;
    rec.facility = info.facility;
    rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
    log.append_with_text(rec, std::string(info.phrase));
  }
  log.sort_by_time();
  return log;
}

TEST(InterarrivalTest, GapsBetweenFatalEventsOnly) {
  const RasLog log = fatal_log({{100, "torusFailure"},
                                {200, "maskInfo"},  // non-fatal, skipped
                                {400, "socketReadFailure"},
                                {1000, "torusFailure"}});
  const auto gaps = fatal_interarrival_gaps(log);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 300.0);
  EXPECT_DOUBLE_EQ(gaps[1], 600.0);
}

TEST(InterarrivalTest, FewerThanTwoFatalsEmptyGaps) {
  EXPECT_TRUE(fatal_interarrival_gaps(fatal_log({{100, "maskInfo"}})).empty());
  EXPECT_TRUE(
      fatal_interarrival_gaps(fatal_log({{100, "torusFailure"}})).empty());
}

TEST(InterarrivalTest, FollowupProbabilityByCategory) {
  // Two network failures 100 s apart, then an isolated iostream failure.
  const RasLog log = fatal_log({{1000, "torusFailure"},
                                {1100, "torusFailure"},
                                {50000, "socketReadFailure"}});
  const auto stats = fatal_followup_by_category(log, 0, 3600);
  const auto& net = stats[static_cast<std::size_t>(MainCategory::kNetwork)];
  EXPECT_EQ(net.triggers, 2u);
  EXPECT_EQ(net.followed, 1u);  // first followed by second; second is not
  EXPECT_DOUBLE_EQ(net.probability, 0.5);
  const auto& ios = stats[static_cast<std::size_t>(MainCategory::kIostream)];
  EXPECT_EQ(ios.triggers, 1u);
  EXPECT_EQ(ios.followed, 0u);
}

TEST(InterarrivalTest, LeadExcludesImmediateFollowups) {
  const RasLog log =
      fatal_log({{1000, "torusFailure"}, {1030, "torusFailure"}});
  // With a 60 s lead the 30 s follow-up does not count.
  const auto stats = fatal_followup_by_category(log, 60, 3600);
  EXPECT_EQ(stats[static_cast<std::size_t>(MainCategory::kNetwork)].followed,
            0u);
}

TEST(InterarrivalTest, RejectsBadWindow) {
  const RasLog log = fatal_log({{100, "torusFailure"}});
  EXPECT_THROW(fatal_followup_by_category(log, 100, 100), InvalidArgument);
  EXPECT_THROW(fatal_followup_by_category(log, -1, 100), InvalidArgument);
}

}  // namespace
}  // namespace bglpred
