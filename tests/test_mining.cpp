// Tests for the association-rule mining substrate: itemsets, Apriori,
// FP-Growth (cross-checked against each other and a brute-force oracle),
// rule generation/combination, and event-set extraction.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mining/apriori.hpp"
#include "mining/event_sets.hpp"
#include "mining/fpgrowth.hpp"
#include "mining/rules.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

// ---- item helpers -----------------------------------------------------

TEST(ItemsTest, LabelEncoding) {
  const Item body = body_item(17);
  const Item label = label_item(17);
  EXPECT_FALSE(is_label(body));
  EXPECT_TRUE(is_label(label));
  EXPECT_EQ(subcat_of(body), 17);
  EXPECT_EQ(subcat_of(label), 17);
  EXPECT_NE(body, label);
}

TEST(ItemsTest, SubsetTest) {
  EXPECT_TRUE(is_subset({}, {1, 2, 3}));
  EXPECT_TRUE(is_subset({2}, {1, 2, 3}));
  EXPECT_TRUE(is_subset({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({4}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({1, 4}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({1}, {}));
}

// ---- transaction db ------------------------------------------------------

TEST(TransactionDbTest, AddSortsAndDedupes) {
  TransactionDb db;
  db.add({3, 1, 2, 1});
  ASSERT_EQ(db.size(), 1u);
  EXPECT_EQ(db.transactions()[0], (Itemset{1, 2, 3}));
}

TEST(TransactionDbTest, AbsoluteSupport) {
  TransactionDb db;
  db.add({1, 2});
  db.add({1, 2, 3});
  db.add({2, 3});
  EXPECT_EQ(db.absolute_support({1, 2}), 2u);
  EXPECT_EQ(db.absolute_support({2}), 3u);
  EXPECT_EQ(db.absolute_support({1, 3}), 1u);
  EXPECT_EQ(db.absolute_support({4}), 0u);
}

TEST(TransactionDbTest, MinCountCeilsAndFloorsAtOne) {
  TransactionDb db;
  for (int i = 0; i < 100; ++i) {
    db.add({static_cast<Item>(i)});
  }
  EXPECT_EQ(db.min_count_for(0.04), 4u);
  EXPECT_EQ(db.min_count_for(0.041), 5u);
  EXPECT_EQ(db.min_count_for(0.0), 1u);
  EXPECT_THROW(db.min_count_for(1.5), InvalidArgument);
}

// ---- frequent itemset mining ------------------------------------------------

// Brute-force oracle: enumerate all itemsets appearing in the db and
// count support by scanning.
std::vector<FrequentItemset> brute_force(const TransactionDb& db,
                                         const MiningOptions& options) {
  std::map<Itemset, std::size_t> counts;
  for (const Transaction& t : db.transactions()) {
    // Enumerate all non-empty subsets up to max size (transactions in
    // these tests are small).
    const std::size_t n = t.size();
    for (std::size_t mask = 1; mask < (1u << n); ++mask) {
      Itemset subset;
      for (std::size_t b = 0; b < n; ++b) {
        if (mask & (1u << b)) {
          subset.push_back(t[b]);
        }
      }
      if (subset.size() <= options.max_itemset_size) {
        ++counts[subset];
      }
    }
  }
  const std::size_t min_count = db.min_count_for(options.min_support);
  std::vector<FrequentItemset> out;
  for (const auto& [items, count] : counts) {
    if (count >= min_count) {
      out.push_back({items, count});
    }
  }
  return out;
}

TransactionDb random_db(std::uint64_t seed, std::size_t transactions,
                        int universe, int max_len) {
  Rng rng(seed);
  TransactionDb db;
  for (std::size_t i = 0; i < transactions; ++i) {
    Transaction t;
    const auto len = static_cast<std::size_t>(rng.uniform_int(1, max_len));
    for (std::size_t k = 0; k < len; ++k) {
      t.push_back(static_cast<Item>(rng.uniform_int(0, universe - 1)));
    }
    db.add(std::move(t));
  }
  return db;
}

TEST(AprioriTest, TextbookExample) {
  TransactionDb db;
  db.add({1, 2, 5});
  db.add({2, 4});
  db.add({2, 3});
  db.add({1, 2, 4});
  db.add({1, 3});
  db.add({2, 3});
  db.add({1, 3});
  db.add({1, 2, 3, 5});
  db.add({1, 2, 3});
  MiningOptions opt;
  opt.min_support = 2.0 / 9.0;
  const FrequentSet result = apriori(db, opt);
  EXPECT_EQ(result.count_of({1}), 6u);
  EXPECT_EQ(result.count_of({2}), 7u);
  EXPECT_EQ(result.count_of({1, 2}), 4u);
  EXPECT_EQ(result.count_of({1, 2, 3}), 2u);
  EXPECT_EQ(result.count_of({1, 2, 5}), 2u);
  EXPECT_EQ(result.count_of({4}), 2u);
  EXPECT_EQ(result.count_of({1, 4}), 0u);  // infrequent (support 1)
}

TEST(AprioriTest, EmptyDb) {
  const FrequentSet result = apriori(TransactionDb{}, MiningOptions{});
  EXPECT_EQ(result.size(), 0u);
}

TEST(AprioriTest, MaxItemsetSizeBounds) {
  TransactionDb db;
  for (int i = 0; i < 10; ++i) {
    db.add({1, 2, 3, 4});
  }
  MiningOptions opt;
  opt.min_support = 0.5;
  opt.max_itemset_size = 2;
  const FrequentSet result = apriori(db, opt);
  for (const FrequentItemset& f : result.itemsets()) {
    EXPECT_LE(f.items.size(), 2u);
  }
  EXPECT_EQ(result.count_of({1, 2}), 10u);
  EXPECT_EQ(result.count_of({1, 2, 3}), 0u);
}

// Property sweep: Apriori == FP-Growth == brute force on random DBs,
// across support thresholds and universe shapes.
struct MinerParam {
  std::uint64_t seed;
  std::size_t transactions;
  int universe;
  int max_len;
  double min_support;
};

class MinerEquivalenceTest : public ::testing::TestWithParam<MinerParam> {};

TEST_P(MinerEquivalenceTest, AprioriEqualsFpGrowthEqualsBruteForce) {
  const MinerParam p = GetParam();
  const TransactionDb db =
      random_db(p.seed, p.transactions, p.universe, p.max_len);
  MiningOptions opt;
  opt.min_support = p.min_support;
  opt.max_itemset_size = 4;

  const auto a = sorted_by_itemset(apriori(db, opt).itemsets());
  const auto f = sorted_by_itemset(fpgrowth(db, opt).itemsets());
  const auto oracle = sorted_by_itemset(brute_force(db, opt));

  ASSERT_EQ(a.size(), oracle.size());
  ASSERT_EQ(f.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(a[i].items, oracle[i].items);
    EXPECT_EQ(a[i].count, oracle[i].count);
    EXPECT_EQ(f[i].items, oracle[i].items);
    EXPECT_EQ(f[i].count, oracle[i].count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomDbs, MinerEquivalenceTest,
    ::testing::Values(MinerParam{1, 50, 8, 5, 0.1},
                      MinerParam{2, 100, 12, 6, 0.05},
                      MinerParam{3, 200, 6, 4, 0.2},
                      MinerParam{4, 30, 20, 8, 0.1},
                      MinerParam{5, 150, 10, 5, 0.02},
                      MinerParam{6, 80, 5, 3, 0.3},
                      MinerParam{7, 400, 15, 6, 0.04},
                      MinerParam{8, 60, 25, 10, 0.15}));

// ---- rule generation ---------------------------------------------------------

TEST(RuleTest, GeneratesBodyToLabelRules) {
  TransactionDb db;
  // 10 transactions: {a, b, L} x8, {a, b} x2 -> confidence 0.8.
  const Item a = body_item(1);
  const Item b = body_item(2);
  const Item label = label_item(50);
  for (int i = 0; i < 8; ++i) {
    db.add({a, b, label});
  }
  db.add({a, b});
  db.add({a, b});
  MiningOptions opt;
  opt.min_support = 0.1;
  const FrequentSet frequent = apriori(db, opt);
  const auto rules = generate_rules(frequent, db.size(), 0.2);
  // Find the {a,b} -> 50 rule.
  bool found = false;
  for (const Rule& r : rules) {
    if (r.body == Itemset{a, b}) {
      found = true;
      EXPECT_DOUBLE_EQ(r.confidence, 0.8);
      EXPECT_DOUBLE_EQ(r.support, 0.8);
      EXPECT_EQ(r.heads, std::vector<SubcategoryId>{50});
      EXPECT_EQ(r.body_count, 10u);
      EXPECT_EQ(r.hit_count, 8u);
    }
    EXPECT_FALSE(r.body.empty());
    EXPECT_EQ(r.heads.size(), 1u);
  }
  EXPECT_TRUE(found);
}

TEST(RuleTest, MinConfidenceFilters) {
  TransactionDb db;
  const Item a = body_item(1);
  const Item label = label_item(50);
  db.add({a, label});
  for (int i = 0; i < 9; ++i) {
    db.add({a});
  }
  MiningOptions opt;
  opt.min_support = 0.05;
  const FrequentSet frequent = apriori(db, opt);
  EXPECT_TRUE(generate_rules(frequent, db.size(), 0.2).empty());  // 0.1<0.2
  EXPECT_EQ(generate_rules(frequent, db.size(), 0.05).size(), 1u);
}

TEST(RuleTest, CombineMergesEqualBodies) {
  Rule r1;
  r1.body = {1, 2};
  r1.heads = {50};
  r1.confidence = 0.4;
  r1.support = 0.1;
  r1.body_count = 10;
  r1.hit_count = 4;
  Rule r2 = r1;
  r2.heads = {60};
  r2.confidence = 0.3;
  r2.hit_count = 3;
  Rule other;
  other.body = {3};
  other.heads = {70};
  other.confidence = 0.9;
  other.body_count = 5;
  other.hit_count = 4;

  const auto combined = combine_rules({r1, r2, other});
  ASSERT_EQ(combined.size(), 2u);
  const Rule* merged = nullptr;
  for (const Rule& r : combined) {
    if (r.body == Itemset{1, 2}) {
      merged = &r;
    }
  }
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->heads, (std::vector<SubcategoryId>{50, 60}));
  EXPECT_DOUBLE_EQ(merged->confidence, 0.7);  // exact sum (disjoint labels)
  EXPECT_EQ(merged->hit_count, 7u);
}

TEST(RuleTest, CombinedConfidenceClampedToOne) {
  Rule r1;
  r1.body = {1};
  r1.heads = {50};
  r1.confidence = 0.8;
  r1.body_count = 10;
  Rule r2 = r1;
  r2.heads = {60};
  r2.confidence = 0.8;
  const auto combined = combine_rules({r1, r2});
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_DOUBLE_EQ(combined[0].confidence, 1.0);
}

TEST(RuleSetTest, SortedByConfidenceAndBestMatch) {
  Rule high;
  high.body = {1, 2};
  high.heads = {50};
  high.confidence = 0.9;
  Rule low;
  low.body = {1};
  low.heads = {60};
  low.confidence = 0.4;
  const RuleSet set({low, high});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_DOUBLE_EQ(set.rules()[0].confidence, 0.9);

  // Window containing both bodies -> the higher-confidence rule wins.
  const Rule* best = set.best_match({1, 2, 7});
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->confidence, 0.9);
  // Window containing only item 1 -> the single-item rule.
  best = set.best_match({1, 7});
  ASSERT_NE(best, nullptr);
  EXPECT_DOUBLE_EQ(best->confidence, 0.4);
  EXPECT_EQ(set.best_match({7, 8}), nullptr);
}

TEST(RuleTest, ToStringUsesCatalogNames) {
  Rule r;
  r.body = {body_item(catalog().find("nodeMapFileError"))};
  r.heads = {catalog().find("nodemapCreateFailure")};
  r.confidence = 1.0;
  EXPECT_EQ(r.to_string(),
            "nodeMapFileError ==> nodemapCreateFailure: 1.000000");
}

TEST(MineRulesTest, ApioriAndFpGrowthProduceIdenticalRuleSets) {
  Rng rng(77);
  TransactionDb db;
  for (int i = 0; i < 300; ++i) {
    Transaction t;
    for (int k = 0; k < 4; ++k) {
      t.push_back(body_item(static_cast<SubcategoryId>(
          rng.uniform_int(0, 9))));
    }
    t.push_back(label_item(static_cast<SubcategoryId>(
        rng.uniform_int(90, 92))));
    db.add(std::move(t));
  }
  RuleOptions opt;
  opt.mining.min_support = 0.04;
  opt.min_confidence = 0.2;
  const RuleSet a = mine_rules(db, opt, MiningAlgorithm::kApriori);
  const RuleSet f = mine_rules(db, opt, MiningAlgorithm::kFpGrowth);
  ASSERT_EQ(a.size(), f.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.rules()[i].body, f.rules()[i].body);
    EXPECT_EQ(a.rules()[i].heads, f.rules()[i].heads);
    EXPECT_DOUBLE_EQ(a.rules()[i].confidence, f.rules()[i].confidence);
  }
}

TEST(MineRulesTest, ZeroMaxItemsetSizeIsRejected) {
  // Regression: max_itemset_size == 0 used to wrap the per-label
  // "leave room for the label" subtraction around std::size_t and mine
  // with an effectively unbounded cardinality. It is a contract error.
  TransactionDb db;
  db.add({body_item(1), label_item(2)});
  RuleOptions opt;
  opt.mining.max_itemset_size = 0;
  for (const SupportBase base :
       {SupportBase::kPerLabel, SupportBase::kAllTransactions}) {
    opt.support_base = base;
    EXPECT_THROW(mine_rules(db, opt), InvalidArgument);
  }
}

// ---- event-set extraction ------------------------------------------------------

RasRecord event(TimePoint t, const char* name) {
  const SubcategoryId id = catalog().find(name);
  EXPECT_NE(id, kUnclassified) << name;
  const SubcategoryInfo& info = catalog().info(id);
  RasRecord rec;
  rec.time = t;
  rec.subcategory = id;
  rec.severity = info.severity;
  rec.facility = info.facility;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
  return rec;
}

TEST(EventSetTest, BuildsWindowedTransactions) {
  RasLog log;
  log.append_with_text(event(100, "nodeMapFileError"), "a");
  log.append_with_text(event(200, "maskInfo"), "b");
  log.append_with_text(event(500, "nodemapCreateFailure"), "f");
  log.append_with_text(event(5000, "torusFailure"), "g");  // no precursors

  EventSetStats stats;
  const TransactionDb db = extract_event_sets(log, 600, &stats);
  EXPECT_EQ(stats.fatal_events, 2u);
  EXPECT_EQ(stats.with_precursors, 1u);
  EXPECT_EQ(stats.without_precursors, 1u);
  EXPECT_DOUBLE_EQ(stats.no_precursor_fraction(), 0.5);

  ASSERT_EQ(db.size(), 2u);
  const Itemset expected{
      body_item(catalog().find("nodeMapFileError")),
      body_item(catalog().find("maskInfo")),
      label_item(catalog().find("nodemapCreateFailure"))};
  Itemset sorted_expected = expected;
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(db.transactions()[0], sorted_expected);
  EXPECT_EQ(db.transactions()[1],
            (Itemset{label_item(catalog().find("torusFailure"))}));
}

TEST(EventSetTest, WindowBoundaryIsExclusive) {
  RasLog log;
  log.append_with_text(event(100, "maskInfo"), "a");
  log.append_with_text(event(700, "torusFailure"), "f");
  // Precursor exactly window seconds before: 700 - 600 = 100 -> excluded
  // (window is (t - W, t)).
  const TransactionDb db = extract_event_sets(log, 600, nullptr);
  EXPECT_EQ(db.transactions()[0].size(), 1u);  // label only
}

TEST(EventSetTest, EarlierFatalEventsAreNotBodyItems) {
  RasLog log;
  log.append_with_text(event(100, "torusFailure"), "f1");
  log.append_with_text(event(200, "socketReadFailure"), "f2");
  const TransactionDb db = extract_event_sets(log, 600, nullptr);
  ASSERT_EQ(db.size(), 2u);
  // The second transaction must not contain the first fatal event.
  EXPECT_EQ(db.transactions()[1].size(), 1u);
}

TEST(EventSetTest, RequiresPositiveWindowAndSortedLog) {
  RasLog log;
  log.append_with_text(event(100, "torusFailure"), "f");
  EXPECT_THROW(extract_event_sets(log, 0, nullptr), InvalidArgument);
}

}  // namespace
}  // namespace bglpred
