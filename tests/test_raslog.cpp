// Tests for RAS records, the log container, and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "raslog/binary_io.hpp"
#include "raslog/io.hpp"
#include "raslog/log.hpp"

namespace bglpred {
namespace {

RasRecord sample_record(TimePoint t = 1000) {
  RasRecord rec;
  rec.time = t;
  rec.job = 42;
  rec.location = bgl::Location::make_compute_chip(0, 1, 7, 21);
  rec.event_type = EventType::kRas;
  rec.facility = Facility::kTorus;
  rec.severity = Severity::kFatal;
  return rec;
}

// ---- severity / facility / event type ----------------------------------

TEST(SeverityTest, NamesRoundTrip) {
  for (int i = 0; i < kSeverityCount; ++i) {
    const auto s = static_cast<Severity>(i);
    EXPECT_EQ(parse_severity(to_string(s)), s);
  }
  EXPECT_THROW(parse_severity("CRITICAL"), ParseError);
}

TEST(SeverityTest, FatalClassification) {
  EXPECT_TRUE(is_fatal(Severity::kFatal));
  EXPECT_TRUE(is_fatal(Severity::kFailure));
  EXPECT_FALSE(is_fatal(Severity::kInfo));
  EXPECT_FALSE(is_fatal(Severity::kWarning));
  EXPECT_FALSE(is_fatal(Severity::kSevere));
  EXPECT_FALSE(is_fatal(Severity::kError));
}

TEST(FacilityTest, NamesRoundTrip) {
  for (int i = 0; i < kFacilityCount; ++i) {
    const auto f = static_cast<Facility>(i);
    EXPECT_EQ(parse_facility(to_string(f)), f);
  }
  EXPECT_THROW(parse_facility("NOPE"), ParseError);
}

TEST(EventTypeTest, NamesRoundTrip) {
  for (const EventType t :
       {EventType::kRas, EventType::kMonitor, EventType::kControl}) {
    EXPECT_EQ(parse_event_type(to_string(t)), t);
  }
  EXPECT_THROW(parse_event_type("OTHER"), ParseError);
}

// ---- RasLog ----------------------------------------------------------------

TEST(RasLogTest, AppendWithTextInterns) {
  RasLog log;
  log.append_with_text(sample_record(), "uncorrectable torus error");
  log.append_with_text(sample_record(2000), "uncorrectable torus error");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].entry_data, log.records()[1].entry_data);
  EXPECT_EQ(log.text_of(log.records()[0]), "uncorrectable torus error");
}

TEST(RasLogTest, SortByTimeIsStableAndDeterministic) {
  RasLog log;
  log.append_with_text(sample_record(300), "c");
  log.append_with_text(sample_record(100), "a");
  log.append_with_text(sample_record(200), "b");
  EXPECT_FALSE(log.is_time_sorted());
  log.sort_by_time();
  EXPECT_TRUE(log.is_time_sorted());
  EXPECT_EQ(log.text_of(log.records()[0]), "a");
  EXPECT_EQ(log.text_of(log.records()[2]), "c");
}

TEST(RasLogTest, SpanRequiresSortedNonEmpty) {
  RasLog log;
  EXPECT_THROW(log.span(), InvalidArgument);
  log.append_with_text(sample_record(100), "x");
  log.append_with_text(sample_record(500), "y");
  const TimeSpan span = log.span();
  EXPECT_EQ(span.begin, 100);
  EXPECT_EQ(span.end, 501);
}

TEST(RasLogTest, FatalCountAndHistogram) {
  RasLog log;
  RasRecord info = sample_record(1);
  info.severity = Severity::kInfo;
  log.append_with_text(info, "i");
  log.append_with_text(sample_record(2), "f");  // kFatal
  RasRecord failure = sample_record(3);
  failure.severity = Severity::kFailure;
  log.append_with_text(failure, "g");
  EXPECT_EQ(log.fatal_count(), 2u);
  const auto hist = log.severity_histogram();
  EXPECT_EQ(hist[static_cast<std::size_t>(Severity::kInfo)], 1u);
  EXPECT_EQ(hist[static_cast<std::size_t>(Severity::kFatal)], 1u);
  EXPECT_EQ(hist[static_cast<std::size_t>(Severity::kFailure)], 1u);
}

TEST(RasLogTest, SubsetReinternsText) {
  RasLog log;
  log.append_with_text(sample_record(1), "alpha");
  log.append_with_text(sample_record(2), "beta");
  const RasLog sub = log.subset({log.records()[1]});
  ASSERT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.text_of(sub.records()[0]), "beta");
  // The subset owns an independent pool.
  EXPECT_EQ(sub.pool().size(), 1u);
}

// ---- serialization ----------------------------------------------------------

TEST(RasIoTest, FormatMatchesDocumentedLayout) {
  RasLog log;
  RasRecord rec = sample_record(make_time(2005, 3, 14, 6, 25, 1));
  rec.job = 1182;
  log.append_with_text(rec, "uncorrectable torus error");
  EXPECT_EQ(format_record(log, log.records()[0]),
            "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|"
            "uncorrectable torus error");
}

TEST(RasIoTest, WriteReadRoundTrip) {
  RasLog log;
  for (int i = 0; i < 20; ++i) {
    RasRecord rec = sample_record(1000 + i * 10);
    rec.severity = i % 2 == 0 ? Severity::kInfo : Severity::kFailure;
    rec.facility = i % 3 == 0 ? Facility::kCiod : Facility::kMemory;
    log.append_with_text(rec, "event number " + std::to_string(i));
  }
  std::stringstream buffer;
  write_log(buffer, log);
  const RasLog restored = read_log(buffer);
  ASSERT_EQ(restored.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    const RasRecord& a = log.records()[i];
    const RasRecord& b = restored.records()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.location, b.location);
    EXPECT_EQ(a.severity, b.severity);
    EXPECT_EQ(a.facility, b.facility);
    EXPECT_EQ(log.text_of(a), restored.text_of(b));
  }
}

TEST(RasIoTest, ReaderSkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# comment\n"
      "\n"
      "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|x\n");
  const RasLog log = read_log(in);
  EXPECT_EQ(log.size(), 1u);
}

TEST(RasIoTest, MalformedLinesThrow) {
  RasLog log;
  EXPECT_THROW(parse_record_line("only|three|fields", log), ParseError);
  EXPECT_THROW(
      parse_record_line(
          "bad-time|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|x", log),
      ParseError);
  EXPECT_THROW(
      parse_record_line(
          "2005-03-14 06:25:01|RAS|WHAT|TORUS|R00-M1-N07-C21|1182|x", log),
      ParseError);
  EXPECT_THROW(
      parse_record_line(
          "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|notnum|x",
          log),
      ParseError);
  EXPECT_EQ(log.size(), 0u);  // never mutated on error
}

TEST(RasIoTest, ParseErrorsNameTheOffendingField) {
  RasLog log;
  try {
    parse_record_line(
        "2005-03-14 06:25:01|RAS|WHAT|TORUS|R00-M1-N07-C21|1182|x", log);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("severity field"),
              std::string::npos)
        << e.what();
  }
}

TEST(RasIoTest, StrictReadReportsLineNumber) {
  std::stringstream in(
      "# comment\n"
      "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|ok\n"
      "broken line\n");
  try {
    read_log(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(RasIoTest, NegativeJobIdRejected) {
  // std::stoul would silently wrap "-1" to 4294967295; the checked
  // parser must reject it instead.
  RasLog log;
  EXPECT_THROW(
      parse_record_line(
          "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|-1|x", log),
      ParseError);
  EXPECT_EQ(log.size(), 0u);
}

TEST(RasIoTest, LenientSkipsAndTallies) {
  std::stringstream in(
      "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|ok\n"
      "not|enough|fields\n"
      "2005-03-14 06:25:02|RAS|FATAL|TORUS|R00-M1-N07-C21|-1|neg job\n"
      "2005-03-14 06:25:03|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|ok too\n");
  IngestReport report;
  const RasLog log = read_log(in, ReadOptions::lenient(), &report);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(report.records_attempted, 4u);
  EXPECT_EQ(report.records_kept, 2u);
  EXPECT_EQ(report.records_dropped, 2u);
  EXPECT_TRUE(report.reconciles());
  EXPECT_EQ(report.by_class[static_cast<std::size_t>(
                IngestError::kFieldCount)],
            1u);
  EXPECT_EQ(report.by_class[static_cast<std::size_t>(IngestError::kBadJob)],
            1u);
  ASSERT_EQ(report.samples.size(), 2u);
  EXPECT_NE(report.samples[0].find("line 2"), std::string::npos);
}

TEST(RasIoTest, LenientMatchesStrictOnCleanInput) {
  RasLog log;
  for (int i = 0; i < 30; ++i) {
    log.append_with_text(sample_record(1000 + i), "evt " + std::to_string(i));
  }
  std::stringstream buffer;
  write_log(buffer, log);
  const std::string text = buffer.str();

  std::stringstream strict_in(text);
  std::stringstream lenient_in(text);
  const RasLog strict = read_log(strict_in);
  IngestReport report;
  const RasLog lenient =
      read_log(lenient_in, ReadOptions::lenient(0.0), &report);
  ASSERT_EQ(strict.size(), lenient.size());
  EXPECT_EQ(report.records_dropped, 0u);
  std::stringstream a, b;
  write_log(a, strict);
  write_log(b, lenient);
  EXPECT_EQ(a.str(), b.str());  // byte-identical re-serialization
}

TEST(RasIoTest, LenientAbortsPastErrorBudget) {
  // 30 lines, all broken: after the 20-record grace period the 0.25
  // budget is blown and the reader must give up rather than grind on.
  std::stringstream in;
  for (int i = 0; i < 30; ++i) {
    in << "garbage line " << i << "\n";
  }
  IngestReport report;
  EXPECT_THROW(read_log(in, ReadOptions::lenient(0.25), &report),
               ParseError);
}

TEST(RasIoTest, BinaryLenientSurvivesTruncation) {
  RasLog log;
  for (int i = 0; i < 10; ++i) {
    log.append_with_text(sample_record(1000 + i), "bin " + std::to_string(i));
  }
  std::stringstream buffer;
  write_log_binary(buffer, log);
  const std::string blob = buffer.str();

  // Cut the last record's tuple in half.
  std::stringstream cut(blob.substr(0, blob.size() - 14));
  IngestReport report;
  const RasLog salvaged =
      read_log_binary(cut, ReadOptions::lenient(), &report);
  EXPECT_EQ(salvaged.size(), 9u);
  EXPECT_TRUE(report.truncated);
  EXPECT_TRUE(report.reconciles());
  EXPECT_EQ(report.by_class[static_cast<std::size_t>(
                IngestError::kTruncated)],
            1u);

  // Strict mode still refuses the same stream.
  std::stringstream cut_again(blob.substr(0, blob.size() - 14));
  EXPECT_THROW(read_log_binary(cut_again), ParseError);

  // A wrong magic is a wrong *file*, not a damaged one: even lenient
  // reads reject it.
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  std::stringstream wrong(bad_magic);
  EXPECT_THROW(read_log_binary(wrong, ReadOptions::lenient(), &report),
               ParseError);
}

TEST(RasIoTest, SaveLoadFileRoundTrip) {
  RasLog log;
  log.append_with_text(sample_record(123456789), "file round trip");
  const std::string path = testing::TempDir() + "/bglpred_io_test.log";
  save_log(path, log);
  const RasLog restored = load_log(path);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.records()[0].time, 123456789);
  EXPECT_THROW(load_log("/nonexistent/dir/foo.log"), Error);
}

}  // namespace
}  // namespace bglpred
