// Connection-lifecycle and overload-protection tests for the serve
// plane (DESIGN §8.5), run against BOTH readiness backends. Each test
// arms exactly the limit it exercises and asserts two things: the
// misbehaving connection is dealt with (typed refusal, eviction, or
// timeout — and the matching serve.* counter fires), and well-behaved
// traffic keeps flowing. Also covers graceful drain (including the
// force-close deadline), the STREAM_STATUS reconnect watermark,
// submit_all_resilient surviving a mid-stream eviction, and the
// EINTR-vs-deadline regression in EventPoller::wait.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <pthread.h>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/three_phase.hpp"
#include "raslog/record.hpp"
#include "serve/client.hpp"
#include "serve/event_poller.hpp"
#include "serve/net_util.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace bglpred::serve {
namespace {

class ServeLifecycleTest : public ::testing::TestWithParam<PollerBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, ServeLifecycleTest,
    ::testing::Values(PollerBackend::kEpoll, PollerBackend::kPoll),
    [](const ::testing::TestParamInfo<PollerBackend>& info) {
      return std::string(to_string(info.param));
    });

ServerOptions base_options(PollerBackend backend,
                           const ThreePhasePredictor& tpp) {
  ServerOptions options;
  options.backend = backend;
  options.shards.shard_count = 1;
  options.shards.queue_capacity = 256;
  options.shards.predictor_factory = [&tpp] {
    return tpp.make_predictor(Method::kEveryFailure);
  };
  return options;
}

std::vector<WireRecord> synthetic_records(std::size_t n) {
  std::vector<WireRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RasRecord rec;
    rec.time = static_cast<TimePoint>(i + 1);
    rec.severity = Severity::kInfo;
    out.push_back(WireRecord{rec, "lifecycle test entry"});
  }
  return out;
}

std::string encoded_stats_request(std::uint32_t seq) {
  Frame f;
  f.type = MessageType::kStats;
  f.seq = seq;
  return encode_frame(f);
}

/// Polls `pred` every few milliseconds until it holds or `timeout_ms`
/// elapses; returns the final value.
bool wait_until(const std::function<bool()>& pred, std::uint64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Reads frames off a raw connection until EOF or the io timeout;
/// returns true if a kRejectedOverloaded frame was seen, setting
/// `saw_eof` when the server closed the connection.
bool drain_for_rejection(const OwnedFd& fd, bool& saw_eof) {
  FrameReader reader;
  std::string chunk;
  bool rejected = false;
  try {
    for (;;) {
      chunk.clear();
      const std::size_t n = recv_some(fd, chunk);
      if (n == 0) {
        saw_eof = true;
        break;
      }
      if (n == SIZE_MAX) {
        break;
      }
      reader.feed(chunk);
      Frame frame;
      FrameError error;
      while (reader.next(frame, error) == FrameReader::Status::kFrame) {
        if (frame.type == MessageType::kRejectedOverloaded) {
          rejected = true;
        }
      }
    }
  } catch (const Error&) {
    saw_eof = true;  // reset counts as a close
  }
  return rejected;
}

// Admission control: with the ceiling at one connection, a second
// arrival is accepted, told kRejectedOverloaded, and closed — while the
// admitted client keeps full service. Also pins the startup fd-limit
// gauge the centralized raise_fd_limit() publishes.
TEST_P(ServeLifecycleTest, AcceptShedOverConnectionCeiling) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.max_connections = 1;
  Server server(options);
  server.start();
  EXPECT_GT(server.metrics().gauge("serve.fd_limit").value(), 0u);

  Client keeper = Client::connect(server.port());
  ASSERT_FALSE(keeper.stats_json().empty());  // admitted and served

  OwnedFd extra = connect_loopback(server.port(), /*connect_timeout=*/0);
  set_io_timeouts(extra, 2'000'000, 2'000'000);
  bool saw_eof = false;
  EXPECT_TRUE(drain_for_rejection(extra, saw_eof))
      << "shed connection never saw the typed refusal";
  EXPECT_TRUE(saw_eof) << "shed connection was not closed";
  EXPECT_EQ(server.metrics().counter("serve.accepts_shed").value(), 1u);

  // The admitted connection is unaffected.
  EXPECT_FALSE(keeper.stats_json().empty());
  keeper.shutdown_server();
  server.stop();
}

// Idle supervision keys on COMPLETED frames: a slowloris dribbling one
// byte at a time never completes one, so its byte activity must not
// refresh the deadline.
TEST_P(ServeLifecycleTest, SlowlorisDribbleIdlesOut) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.idle_timeout_micros = 100'000;
  Server server(options);
  server.start();
  const Counter& idle = server.metrics().counter("serve.idle_timeouts");

  OwnedFd conn = connect_loopback(server.port());
  set_io_timeouts(conn, 50'000, 50'000);
  const std::string wire = encoded_stats_request(1);
  std::size_t off = 0;
  const bool evicted = wait_until(
      [&] {
        if (off + 1 < wire.size()) {  // never finish the frame
          try {
            send_all(conn, std::string_view(wire.data() + off, 1));
            ++off;
          } catch (const Error&) {
            // server already closed its end
          }
        }
        return idle.value() >= 1;
      },
      2000);
  EXPECT_TRUE(evicted) << "dribbling connection never idled out";

  server.drain();
  server.stop();
}

// A reader that floods requests and consumes no replies grows its
// outbox past the per-connection cap and is evicted at enqueue time.
TEST_P(ServeLifecycleTest, SlowReaderEvictedAtOutboxCap) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.max_connection_outbox_bytes = 4096;
  options.limits.sndbuf_bytes = 4096;
  Server server(options);
  server.start();
  const Counter& evicted =
      server.metrics().counter("serve.slow_readers_evicted");

  OwnedFd conn = connect_loopback(server.port(), /*connect_timeout=*/0,
                                  /*rcvbuf_bytes=*/4096);
  set_io_timeouts(conn, 50'000, 2'000'000);
  std::uint32_t seq = 1;
  for (std::size_t i = 0; i < 64; ++i) {
    try {
      send_all(conn, encoded_stats_request(seq++));
    } catch (const Error&) {
      break;  // eviction raced the flood — that's the point
    }
  }
  EXPECT_TRUE(wait_until([&] { return evicted.value() >= 1; }, 2000))
      << "slow reader was never evicted";

  server.drain();
  server.stop();
}

// A connection whose buffered replies make no flush progress (stalled
// reader, shrunk windows) trips the write-stall timeout.
TEST_P(ServeLifecycleTest, WriteStallTimeoutEvictsStalledReader) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.write_stall_timeout_micros = 100'000;
  options.limits.sndbuf_bytes = 4096;
  Server server(options);
  server.start();
  const Counter& stalled =
      server.metrics().counter("serve.write_stall_timeouts");

  OwnedFd conn = connect_loopback(server.port(), /*connect_timeout=*/0,
                                  /*rcvbuf_bytes=*/4096);
  set_io_timeouts(conn, 50'000, 2'000'000);
  // Enough replies that the kernel buffers (server sndbuf + our rcvbuf)
  // cannot absorb them all; the stuck remainder arms the stall timer.
  std::uint32_t seq = 1;
  for (std::size_t i = 0; i < 128; ++i) {
    send_all(conn, encoded_stats_request(seq++));
  }
  EXPECT_TRUE(wait_until([&] { return stalled.value() >= 1; }, 2000))
      << "stalled reader never hit the write-stall timeout";

  server.drain();
  server.stop();
}

// The per-connection inbound budget: the frame over budget is refused
// with kRejectedOverloaded (accepted=0, watermark untouched), and once
// the window rolls the same client is served again — budget rejection
// is backpressure, not a ban.
TEST_P(ServeLifecycleTest, BudgetRejectionRecoversNextWindow) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.session.max_submit_frames_per_window = 2;
  options.limits.session.window_micros = 200'000;
  Server server(options);
  server.start();

  Client client = Client::connect(server.port());
  const std::vector<WireRecord> batch = synthetic_records(4);
  const SubmitResult first = client.submit_batch(5, batch);
  EXPECT_EQ(first.accepted, batch.size());
  const SubmitResult second = client.submit_batch(5, batch);
  EXPECT_EQ(second.accepted, batch.size());
  const SubmitResult third = client.submit_batch(5, batch);
  EXPECT_TRUE(third.overloaded);
  EXPECT_TRUE(third.busy);
  EXPECT_EQ(third.accepted, 0u);
  EXPECT_GE(server.metrics().counter("serve.budget_rejected").value(), 1u);

  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const SubmitResult retry = client.submit_batch(5, batch);
  EXPECT_EQ(retry.accepted, batch.size());
  EXPECT_EQ(client.stream_accepted(5), 3 * batch.size());

  client.shutdown_server();
  server.stop();
}

// Graceful drain: connections close once their replies flush, the loop
// exits with the last reap, and nothing needed the force-close hammer.
TEST_P(ServeLifecycleTest, DrainClosesIdleConnectionsGracefully) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  Server server(options);
  server.start();

  OwnedFd conn = connect_loopback(server.port());
  set_io_timeouts(conn, 2'000'000, 2'000'000);
  send_all(conn, encoded_stats_request(1));
  std::string reply;
  ASSERT_NE(recv_some(conn, reply), SIZE_MAX);  // registered and served

  server.drain();
  bool saw_eof = false;
  drain_for_rejection(conn, saw_eof);
  EXPECT_TRUE(saw_eof) << "drain never closed the idle connection";
  EXPECT_TRUE(wait_until([&] { return !server.running(); }, 3000))
      << "loop did not exit after the last connection drained";
  EXPECT_EQ(server.metrics().counter("serve.drain_forced_closes").value(),
            0u);
  server.stop();
}

// A connection that cannot flush (stalled reader, replies stuck) is
// force-closed at the drain deadline rather than holding the server
// open forever.
TEST_P(ServeLifecycleTest, DrainDeadlineForceClosesStuckConnection) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.drain_deadline_micros = 150'000;
  options.limits.sndbuf_bytes = 4096;
  Server server(options);
  server.start();

  OwnedFd conn = connect_loopback(server.port(), /*connect_timeout=*/0,
                                  /*rcvbuf_bytes=*/4096);
  set_io_timeouts(conn, 50'000, 2'000'000);
  std::uint32_t seq = 1;
  for (std::size_t i = 0; i < 128; ++i) {
    send_all(conn, encoded_stats_request(seq++));  // replies get stuck
  }
  server.drain();
  EXPECT_TRUE(wait_until(
      [&] {
        return server.metrics()
                       .counter("serve.drain_forced_closes")
                       .value() >= 1 &&
               !server.running();
      },
      3000))
      << "drain deadline never force-closed the stuck connection";
  server.stop();
}

// STREAM_STATUS is the reconnect watermark: it reports the lifetime
// accepted count per stream, and zero for streams never seen.
TEST_P(ServeLifecycleTest, StreamStatusReportsLifetimeAccepted) {
  const ThreePhasePredictor tpp;
  Server server(base_options(GetParam(), tpp));
  server.start();

  Client client = Client::connect(server.port());
  const std::vector<WireRecord> records = synthetic_records(10);
  client.submit_all(7, records);
  EXPECT_EQ(client.stream_accepted(7), records.size());
  EXPECT_EQ(client.stream_accepted(8), 0u);
  client.submit_all(7, synthetic_records(5));
  EXPECT_EQ(client.stream_accepted(7), records.size() + 5);

  client.shutdown_server();
  server.stop();
}

// submit_all_resilient against a server that evicts its connection
// mid-stream (tight idle timeout + a deliberate stall between rounds):
// it must reconnect, resume from the watermark, and land every record
// exactly once.
TEST_P(ServeLifecycleTest, ResilientSubmitSurvivesMidStreamEviction) {
  const ThreePhasePredictor tpp;
  ServerOptions options = base_options(GetParam(), tpp);
  options.limits.idle_timeout_micros = 50'000;
  Server server(options);
  server.start();

  const std::vector<WireRecord> records = synthetic_records(600);
  ResilientOptions ropts;
  ropts.batch_size = 32;
  ropts.window = 2;
  ropts.max_attempts = 10;
  ropts.initial_backoff_micros = 5'000;
  ropts.max_backoff_micros = 50'000;
  ropts.connect_timeout_micros = 2'000'000;
  ropts.io_timeout_micros = 2'000'000;
  std::atomic<int> calls{0};
  ropts.on_progress = [&calls](std::uint64_t) {
    if (calls.fetch_add(1) == 0) {
      // on_progress fires right after a connection establishes, before
      // the remainder submits: outliving the idle timeout here means the
      // server evicts the brand-new connection, so the submit that
      // follows dies mid-stream and must take the reconnect path.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  };
  const ResilientStats stats =
      submit_all_resilient(server.port(), 3, records, ropts);
  EXPECT_GE(stats.reconnects, 1u) << "eviction never forced a reconnect";

  Client verifier = Client::connect(server.port());
  EXPECT_EQ(verifier.stream_accepted(3), records.size())
      << "records were dropped or double-fed across the reconnect";
  verifier.shutdown_server();
  server.stop();
}

std::atomic<int> g_sigusr1_count{0};

void count_sigusr1(int) { g_sigusr1_count.fetch_add(1); }

// The EINTR-vs-deadline regression (net_util satellite): a finite
// EventPoller::wait interrupted by signals must re-wait with the
// REMAINING time, not restart the full timeout. With a signal arriving
// every 30 ms, a restart-from-scratch implementation never times out;
// the fixed one returns on schedule.
TEST_P(ServeLifecycleTest, FiniteWaitTimesOutDespiteSignalStorm) {
  struct sigaction action {};
  action.sa_handler = count_sigusr1;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the syscall must see EINTR
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);
  g_sigusr1_count.store(0);

  auto poller = make_event_poller(GetParam());
  const pthread_t waiter = pthread_self();
  std::atomic<bool> stop{false};
  std::thread pinger([&stop, waiter] {
    // Self-bounded so a regression shows up as a failed assertion, not
    // a hung test.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::seconds(5);
    while (!stop.load() && std::chrono::steady_clock::now() < give_up) {
      pthread_kill(waiter, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
  });

  std::vector<ReadyEvent> events;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = poller->wait(300, events);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  stop.store(true);
  pinger.join();
  sigaction(SIGUSR1, &previous, nullptr);

  EXPECT_EQ(n, 0u);
  EXPECT_GE(g_sigusr1_count.load(), 1) << "no signal landed; test is vacuous";
  EXPECT_GE(elapsed_ms, 250) << "wait returned before its deadline";
  EXPECT_LT(elapsed_ms, 900) << "wait restarted its timeout on EINTR";
}

}  // namespace
}  // namespace bglpred::serve
