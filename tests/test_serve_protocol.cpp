// Tests for the serve wire protocol (framing, payload codecs) and the
// common metrics registry it reports through.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "serve/protocol.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred::serve {
namespace {

// ---- CRC-32 --------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Crc32Test, SeedChainsMultiPartComputations) {
  const std::uint32_t whole = crc32("123456789");
  const std::uint32_t part = crc32("6789", crc32("12345"));
  EXPECT_EQ(part, whole);
}

// ---- framing -------------------------------------------------------------

Frame sample_frame(std::uint32_t seq = 7) {
  Frame f;
  f.type = MessageType::kSubmitRecord;
  f.stream_id = 0xDEADBEEFCAFEF00DULL;
  f.seq = seq;
  f.payload = "payload bytes";
  return f;
}

TEST(FrameTest, EncodeDecodeRoundtrip) {
  const Frame sent = sample_frame();
  FrameReader reader;
  reader.feed(encode_frame(sent));
  Frame got;
  FrameError error;
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kFrame);
  EXPECT_EQ(got.type, sent.type);
  EXPECT_EQ(got.stream_id, sent.stream_id);
  EXPECT_EQ(got.seq, sent.seq);
  EXPECT_EQ(got.payload, sent.payload);
  EXPECT_EQ(reader.next(got, error), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameTest, IncrementalFeedNeedsEveryByte) {
  const std::string bytes = encode_frame(sample_frame());
  FrameReader reader;
  Frame got;
  FrameError error;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    reader.feed(std::string_view(bytes).substr(i, 1));
    ASSERT_EQ(reader.next(got, error), FrameReader::Status::kNeedMore)
        << "frame decoded after only " << i + 1 << " bytes";
  }
  reader.feed(std::string_view(bytes).substr(bytes.size() - 1));
  EXPECT_EQ(reader.next(got, error), FrameReader::Status::kFrame);
}

TEST(FrameTest, MultipleFramesInOneFeed) {
  FrameReader reader;
  reader.feed(encode_frame(sample_frame(1)) + encode_frame(sample_frame(2)));
  Frame got;
  FrameError error;
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kFrame);
  EXPECT_EQ(got.seq, 1u);
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kFrame);
  EXPECT_EQ(got.seq, 2u);
  EXPECT_EQ(reader.next(got, error), FrameReader::Status::kNeedMore);
}

TEST(FrameTest, BadCrcIsRecoverableAndReaderStaysSynced) {
  std::string damaged = encode_frame(sample_frame(1));
  damaged[kFrameHeaderSize] ^= 0x01;  // flip one payload bit
  FrameReader reader;
  reader.feed(damaged + encode_frame(sample_frame(2)));
  Frame got;
  FrameError error;
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kBadFrame);
  EXPECT_EQ(error.code, ErrorCode::kBadCrc);
  EXPECT_EQ(error.seq, 1u);
  // The damaged frame's extent was trustworthy, so the next frame parses.
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kFrame);
  EXPECT_EQ(got.seq, 2u);
}

TEST(FrameTest, BadMagicDesynchronizes) {
  std::string bytes = encode_frame(sample_frame());
  bytes[0] = 'X';
  FrameReader reader;
  reader.feed(bytes);
  Frame got;
  FrameError error;
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kDesync);
  EXPECT_EQ(error.code, ErrorCode::kBadMagic);
  // A desynced reader never yields frames again, even for valid bytes.
  reader.feed(encode_frame(sample_frame()));
  EXPECT_EQ(reader.next(got, error), FrameReader::Status::kDesync);
}

TEST(FrameTest, BadVersionDesynchronizes) {
  std::string bytes = encode_frame(sample_frame());
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  FrameReader reader;
  reader.feed(bytes);
  Frame got;
  FrameError error;
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kDesync);
  EXPECT_EQ(error.code, ErrorCode::kBadVersion);
}

TEST(FrameTest, OversizedLengthPrefixDesynchronizes) {
  std::string bytes = encode_frame(sample_frame());
  // Patch the little-endian payload-size field to kMaxPayload + 1.
  const std::uint32_t huge = kMaxPayload + 1;
  for (std::size_t b = 0; b < 4; ++b) {
    bytes[kLengthOffset + b] = static_cast<char>((huge >> (8 * b)) & 0xff);
  }
  FrameReader reader;
  reader.feed(bytes);
  Frame got;
  FrameError error;
  ASSERT_EQ(reader.next(got, error), FrameReader::Status::kDesync);
  EXPECT_EQ(error.code, ErrorCode::kOversizedFrame);
  EXPECT_EQ(error.stream_id, sample_frame().stream_id);
}

TEST(FrameTest, RejectsOversizedPayloadAtEncode) {
  Frame f = sample_frame();
  f.payload.assign(kMaxPayload + 1, 'x');
  EXPECT_THROW(encode_frame(f), Error);
}

// ---- payload codecs ------------------------------------------------------

RasRecord sample_record() {
  const SubcategoryInfo& torus = catalog().info(catalog().find("torusFailure"));
  RasRecord rec;
  rec.time = 123456;
  rec.job = 42;
  rec.location = bgl::Location::make_compute_chip(3, 1, 7, 2);
  rec.event_type = EventType::kRas;
  rec.facility = torus.facility;
  rec.severity = torus.severity;
  return rec;
}

TEST(CodecTest, RecordRoundtrip) {
  const RasRecord rec = sample_record();
  const std::string entry = "TORUS non-recoverable error seq=1";
  std::string bytes;
  encode_record(bytes, rec, entry);
  BytesReader in(bytes);
  const WireRecord got = decode_record(in);
  EXPECT_EQ(in.remaining(), 0u);
  EXPECT_EQ(got.record.time, rec.time);
  EXPECT_EQ(got.record.job, rec.job);
  EXPECT_EQ(got.record.location.kind, rec.location.kind);
  EXPECT_EQ(got.record.location.rack, rec.location.rack);
  EXPECT_EQ(got.record.location.midplane, rec.location.midplane);
  EXPECT_EQ(got.record.location.node_card, rec.location.node_card);
  EXPECT_EQ(got.record.location.unit, rec.location.unit);
  EXPECT_EQ(got.record.event_type, rec.event_type);
  EXPECT_EQ(got.record.facility, rec.facility);
  EXPECT_EQ(got.record.severity, rec.severity);
  EXPECT_EQ(got.record.subcategory, rec.subcategory);
  EXPECT_EQ(got.entry, entry);
}

TEST(CodecTest, TruncatedRecordThrowsParseError) {
  std::string bytes;
  encode_record(bytes, sample_record(), "entry");
  for (const std::size_t keep : {0u, 1u, 8u, 20u}) {
    BytesReader in(std::string_view(bytes).substr(0, keep));
    EXPECT_THROW(decode_record(in), ParseError) << "kept " << keep;
  }
}

TEST(CodecTest, WarningRoundtripPreservesEveryField) {
  Warning w;
  w.issued_at = -5;  // times may be negative (relative clocks)
  w.window_begin = 100;
  w.window_end = 1900;
  w.confidence = 0.8125;
  w.source = "meta";
  w.mergeable = true;
  std::string bytes;
  encode_warning(bytes, w);
  BytesReader in(bytes);
  const Warning got = decode_warning(in);
  EXPECT_EQ(got.issued_at, w.issued_at);
  EXPECT_EQ(got.window_begin, w.window_begin);
  EXPECT_EQ(got.window_end, w.window_end);
  EXPECT_EQ(got.confidence, w.confidence);
  EXPECT_EQ(got.source, w.source);
  EXPECT_EQ(got.mergeable, w.mergeable);
}

TEST(CodecTest, WarningListRoundtripIsByteStable) {
  std::vector<Warning> list(3);
  for (std::size_t i = 0; i < list.size(); ++i) {
    list[i].issued_at = static_cast<TimePoint>(i * 100);
    list[i].window_end = static_cast<TimePoint>(i * 100 + 1800);
    list[i].confidence = 0.25 * static_cast<double>(i);
    list[i].source = "rule";
  }
  const std::string bytes = encode_warnings(list);
  const std::vector<Warning> got = decode_warnings(bytes);
  ASSERT_EQ(got.size(), list.size());
  // Byte-identity through the codec: re-encoding the decoded list must
  // reproduce the exact payload (this is the equivalence test's measure).
  EXPECT_EQ(encode_warnings(got), bytes);
}

TEST(CodecTest, WarningListRejectsCorruptShapes) {
  const std::string bytes = encode_warnings({Warning{}});
  EXPECT_THROW(decode_warnings(bytes + "x"), ParseError);  // trailing bytes
  std::string huge_count = bytes;
  huge_count[0] = '\xff';
  huge_count[1] = '\xff';
  huge_count[2] = '\xff';
  huge_count[3] = '\xff';
  EXPECT_THROW(decode_warnings(huge_count), ParseError);
}

TEST(CodecTest, ErrorFrameRoundtrip) {
  const FrameError sent{ErrorCode::kBadPayload, "broken \"quoted\" field", 9,
                        31};
  FrameReader reader;
  reader.feed(encode_error_frame(sent));
  Frame frame;
  FrameError frame_error;
  ASSERT_EQ(reader.next(frame, frame_error), FrameReader::Status::kFrame);
  ASSERT_EQ(frame.type, MessageType::kError);
  const FrameError got = decode_error_payload(frame);
  EXPECT_EQ(got.code, sent.code);
  EXPECT_EQ(got.message, sent.message);
  EXPECT_EQ(got.stream_id, sent.stream_id);
  EXPECT_EQ(got.seq, sent.seq);
}

TEST(CodecTest, RequestTypePredicate) {
  EXPECT_TRUE(is_request_type(
      static_cast<std::uint8_t>(MessageType::kSubmitRecord)));
  EXPECT_TRUE(is_request_type(static_cast<std::uint8_t>(MessageType::kShutdown)));
  EXPECT_FALSE(is_request_type(0));
  EXPECT_FALSE(is_request_type(static_cast<std::uint8_t>(MessageType::kOk)));
  EXPECT_FALSE(is_request_type(255));
}

TEST(CodecTest, EveryWireOpcodeRoundtripsThroughTheFramer) {
  // The full MessageType inventory — adding an opcode without extending
  // this list trips the drift check in tools/repo_analyze.py.
  const MessageType requests[] = {
      MessageType::kSubmitRecord, MessageType::kSubmitBatch,
      MessageType::kPollWarnings, MessageType::kCheckpoint,
      MessageType::kRestore,      MessageType::kStats,
      MessageType::kShutdown,     MessageType::kStreamStatus,
  };
  const MessageType responses[] = {
      MessageType::kOk,        MessageType::kWarnings,
      MessageType::kCheckpointBlob, MessageType::kStatsJson,
      MessageType::kError,     MessageType::kRejectedBusy,
      MessageType::kRejectedOverloaded,
  };
  const auto roundtrip = [](MessageType type, bool request) {
    Frame f = sample_frame();
    f.type = type;
    FrameReader reader;
    reader.feed(encode_frame(f));
    Frame got;
    FrameError error;
    ASSERT_EQ(reader.next(got, error), FrameReader::Status::kFrame)
        << "opcode " << static_cast<unsigned>(type);
    EXPECT_EQ(got.type, type);
    EXPECT_EQ(is_request_type(static_cast<std::uint8_t>(type)), request)
        << "opcode " << static_cast<unsigned>(type);
  };
  for (const MessageType type : requests) {
    roundtrip(type, /*request=*/true);
  }
  for (const MessageType type : responses) {
    roundtrip(type, /*request=*/false);
  }
}

// ---- metrics registry ----------------------------------------------------

TEST(MetricsTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("records");
  Counter& b = registry.counter("records");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsTest, NameKindConflictThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), InvalidArgument);
  EXPECT_THROW(registry.histogram("x"), InvalidArgument);
  registry.gauge("y");
  EXPECT_THROW(registry.counter("y"), InvalidArgument);
}

TEST(MetricsTest, HistogramQuantilesBracketSamples) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency");
  for (std::uint64_t v = 0; v < 100; ++v) {
    h.record(v);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 4950u);
  // Power-of-two resolution: the quantile is the holding bucket's upper
  // bound, so it can only overshoot the true value, never undershoot.
  EXPECT_GE(h.quantile(0.5), 49u);
  EXPECT_LE(h.quantile(0.5), 63u);
  EXPECT_GE(h.quantile(0.99), 99u);
  EXPECT_LE(h.quantile(0.99), 127u);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST(MetricsTest, DumpJsonIsDeterministicAndSorted) {
  MetricsRegistry registry;
  // Register in unsorted order; the dump must not care.
  registry.counter("zeta").inc(2);
  registry.counter("alpha").inc(1);
  registry.gauge("depth").set(-4);
  registry.histogram("lat").record(7);
  const std::string a = registry.dump_json();
  const std::string b = registry.dump_json();
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("\"alpha\":1"), a.find("\"zeta\":2"));
  EXPECT_NE(a.find("\"depth\":-4"), std::string::npos);
  EXPECT_NE(a.find("\"lat\":{\"count\":1,\"sum\":7"), std::string::npos);
}

}  // namespace
}  // namespace bglpred::serve
