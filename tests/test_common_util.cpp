// Tests for StringPool, TextTable, CSV, and CLI parsing.
#include <gtest/gtest.h>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_pool.hpp"
#include "common/table.hpp"

namespace bglpred {
namespace {

// ---- StringPool -------------------------------------------------------

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  const StringId a = pool.intern("torus error");
  const StringId b = pool.intern("torus error");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(StringPoolTest, DistinctStringsDistinctIds) {
  StringPool pool;
  const StringId a = pool.intern("a");
  const StringId b = pool.intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.str(a), "a");
  EXPECT_EQ(pool.str(b), "b");
}

TEST(StringPoolTest, FindDoesNotInsert) {
  StringPool pool;
  EXPECT_EQ(pool.find("missing"), kInvalidStringId);
  EXPECT_EQ(pool.size(), 0u);
  const StringId id = pool.intern("present");
  EXPECT_EQ(pool.find("present"), id);
}

TEST(StringPoolTest, StableUnderGrowth) {
  StringPool pool;
  std::vector<StringId> ids;
  for (int i = 0; i < 5000; ++i) {
    ids.push_back(pool.intern("string-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(pool.str(ids[static_cast<std::size_t>(i)]),
              "string-" + std::to_string(i));
    EXPECT_EQ(pool.find("string-" + std::to_string(i)),
              ids[static_cast<std::size_t>(i)]);
  }
}

TEST(StringPoolTest, BadIdThrows) {
  StringPool pool;
  EXPECT_THROW(pool.str(0), InvalidArgument);
}

// ---- TextTable ---------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(TextTableTest, RowWidthMismatchThrows) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::num(0.51568, 4), "0.5157");
  EXPECT_EQ(TextTable::num(1.0, 2), "1.00");
  EXPECT_EQ(TextTable::count(4172359), "4,172,359");
  EXPECT_EQ(TextTable::count(-1234), "-1,234");
  EXPECT_EQ(TextTable::count(7), "7");
}

// ---- CSV ----------------------------------------------------------------

TEST(CsvTest, PlainRoundTrip) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  EXPECT_EQ(w.str(), "a,b\n1,2\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter w({"x"});
  w.add_row({"has,comma"});
  w.add_row({"has\"quote"});
  const std::string out = w.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvTest, ParseLineHandlesQuotes) {
  const auto fields = parse_csv_line("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvTest, WidthMismatchThrows) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), InvalidArgument);
}

// ---- CLI ----------------------------------------------------------------

TEST(CliTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--scale=0.5", "--folds", "10", "pos"};
  const CliArgs args(5, argv);
  EXPECT_DOUBLE_EQ(args.get_double("scale", 0), 0.5);
  EXPECT_EQ(args.get_int("folds", 0), 10);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos");
}

TEST(CliTest, BooleanSwitch) {
  const char* argv[] = {"prog", "--verbose", "--json=false"};
  const CliArgs args(3, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("json", true));
  EXPECT_TRUE(args.get_bool("absent", true));
}

TEST(CliTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", 7), 7);
}

TEST(CliTest, BadNumbersThrow) {
  const char* argv[] = {"prog", "--n=abc"};
  const CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), ParseError);
  EXPECT_THROW(args.get_double("n", 0), ParseError);
}

}  // namespace
}  // namespace bglpred
