// Tests for Phase-1 temporal/spatial compression and the pipeline.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "preprocess/pipeline.hpp"
#include "raslog/log.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

RasRecord make(TimePoint t, bgl::JobId job, const bgl::Location& loc,
               SubcategoryId subcat) {
  RasRecord rec;
  rec.time = t;
  rec.job = job;
  rec.location = loc;
  rec.subcategory = subcat;
  const SubcategoryInfo& info = catalog().info(subcat);
  rec.severity = info.severity;
  rec.facility = info.facility;
  return rec;
}

const bgl::Location kChipA = bgl::Location::make_compute_chip(0, 0, 0, 0);
const bgl::Location kChipB = bgl::Location::make_compute_chip(0, 0, 0, 1);

class CompressorTest : public ::testing::Test {
 protected:
  SubcategoryId torus_ = catalog().find("torusFailure");
  SubcategoryId socket_ = catalog().find("socketReadFailure");
};

TEST_F(CompressorTest, TemporalCoalescesWithinThreshold) {
  RasLog log;
  log.append_with_text(make(100, 1, kChipA, torus_), "e1");
  log.append_with_text(make(300, 1, kChipA, torus_), "e2");  // gap 200 <=300
  log.append_with_text(make(500, 1, kChipA, torus_), "e3");  // gap 200
  const CompressionResult r = compress_temporal(log, 300);
  EXPECT_EQ(r.input_records, 3u);
  EXPECT_EQ(r.output_records, 1u);  // gap-based: one cluster
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.records()[0].time, 100);  // first survives
}

TEST_F(CompressorTest, TemporalKeepsBeyondThreshold) {
  RasLog log;
  log.append_with_text(make(100, 1, kChipA, torus_), "e1");
  log.append_with_text(make(500, 1, kChipA, torus_), "e2");  // gap 400 > 300
  const CompressionResult r = compress_temporal(log, 300);
  EXPECT_EQ(r.output_records, 2u);
}

TEST_F(CompressorTest, TemporalKeysOnJobLocationSubcategory) {
  RasLog log;
  log.append_with_text(make(100, 1, kChipA, torus_), "e1");
  log.append_with_text(make(110, 2, kChipA, torus_), "different job");
  log.append_with_text(make(120, 1, kChipB, torus_), "different location");
  log.append_with_text(make(130, 1, kChipA, socket_), "different subcat");
  const CompressionResult r = compress_temporal(log, 300);
  EXPECT_EQ(r.output_records, 4u);  // nothing coalesces
}

TEST_F(CompressorTest, TemporalGapBasedSlidingCluster) {
  // Events 250 s apart: each within threshold of the previous -> one
  // cluster even though first-to-last exceeds the threshold.
  RasLog log;
  for (int i = 0; i < 5; ++i) {
    log.append_with_text(make(100 + 250 * i, 1, kChipA, torus_), "e");
  }
  const CompressionResult r = compress_temporal(log, 300);
  EXPECT_EQ(r.output_records, 1u);
}

TEST_F(CompressorTest, SpatialDropsCrossLocationDuplicates) {
  RasLog log;
  // Same ENTRY_DATA + JOB_ID from different locations within 300 s.
  log.append_with_text(make(100, 7, kChipA, torus_), "same fault text");
  log.append_with_text(make(150, 7, kChipB, torus_), "same fault text");
  const CompressionResult r = compress_spatial(log, 300);
  EXPECT_EQ(r.output_records, 1u);
  EXPECT_EQ(log.records()[0].location, kChipA);
}

TEST_F(CompressorTest, SpatialKeepsDifferentJobOrText) {
  RasLog log;
  log.append_with_text(make(100, 7, kChipA, torus_), "text one");
  log.append_with_text(make(120, 8, kChipB, torus_), "text one");  // job
  log.append_with_text(make(140, 7, kChipB, torus_), "text two");  // text
  const CompressionResult r = compress_spatial(log, 300);
  EXPECT_EQ(r.output_records, 3u);
}

TEST_F(CompressorTest, CompressionIsIdempotent) {
  RasLog log;
  for (int i = 0; i < 50; ++i) {
    log.append_with_text(
        make(100 + i * 37, (i % 3 == 0) ? 1u : 2u,
             i % 2 == 0 ? kChipA : kChipB, i % 5 == 0 ? socket_ : torus_),
        "text " + std::to_string(i % 7));
  }
  log.sort_by_time();
  compress_temporal(log, 300);
  compress_spatial(log, 300);
  const std::size_t once = log.size();
  const CompressionResult t2 = compress_temporal(log, 300);
  const CompressionResult s2 = compress_spatial(log, 300);
  EXPECT_EQ(t2.removed, 0u);
  EXPECT_EQ(s2.removed, 0u);
  EXPECT_EQ(log.size(), once);
}

TEST_F(CompressorTest, RequiresSortedLog) {
  RasLog log;
  log.append_with_text(make(500, 1, kChipA, torus_), "a");
  log.append_with_text(make(100, 1, kChipA, torus_), "b");
  EXPECT_THROW(compress_temporal(log, 300), InvalidArgument);
  EXPECT_THROW(compress_spatial(log, 300), InvalidArgument);
}

TEST_F(CompressorTest, ZeroThresholdOnlyMergesSameSecond) {
  RasLog log;
  log.append_with_text(make(100, 1, kChipA, torus_), "e");
  log.append_with_text(make(100, 1, kChipA, torus_), "e");
  log.append_with_text(make(101, 1, kChipA, torus_), "e");
  const CompressionResult r = compress_temporal(log, 0);
  // Same-second duplicate merges (gap 0 <= 0); the 101 s record survives.
  EXPECT_EQ(r.output_records, 2u);
}

TEST_F(CompressorTest, CompressionRatio) {
  CompressionResult r;
  r.input_records = 100;
  r.output_records = 25;
  EXPECT_DOUBLE_EQ(r.compression_ratio(), 0.25);
  CompressionResult empty;
  EXPECT_DOUBLE_EQ(empty.compression_ratio(), 1.0);
}

// ---- pipeline ---------------------------------------------------------------

TEST(PipelineTest, EndToEndClassifiesAndCompresses) {
  RasLog log;
  const SubcategoryInfo& torus = catalog().info(catalog().find("torusFailure"));
  // Three duplicate raw reports of one fault + one distinct event.
  for (TimePoint t : {100, 150, 200}) {
    RasRecord rec;
    rec.time = t;
    rec.job = 5;
    rec.location = kChipA;
    rec.facility = torus.facility;
    rec.severity = torus.severity;
    log.append_with_text(rec, std::string(torus.phrase) + " seq=1");
  }
  RasRecord other;
  other.time = 5000;
  other.job = 5;
  other.location = kChipA;
  other.facility = torus.facility;
  other.severity = torus.severity;
  log.append_with_text(other, std::string(torus.phrase) + " seq=2");

  const PreprocessStats stats = preprocess(log);
  EXPECT_EQ(stats.raw_records, 4u);
  EXPECT_EQ(stats.unique_events, 2u);
  EXPECT_EQ(stats.unique_fatal_events, 2u);
  EXPECT_EQ(stats.fatal_per_main[static_cast<std::size_t>(
                MainCategory::kNetwork)],
            2u);
  for (const RasRecord& rec : log.records()) {
    EXPECT_NE(rec.subcategory, kUnclassified);
  }
}

TEST(PipelineTest, SortsUnsortedInput) {
  RasLog log;
  const SubcategoryInfo& torus = catalog().info(catalog().find("torusFailure"));
  for (TimePoint t : {900, 100, 500}) {
    RasRecord rec;
    rec.time = t;
    rec.job = 1;
    rec.location = kChipA;
    rec.facility = torus.facility;
    rec.severity = torus.severity;
    log.append_with_text(rec, std::string(torus.phrase) + " s=" +
                                  std::to_string(t));
  }
  preprocess(log);
  EXPECT_TRUE(log.is_time_sorted());
}

TEST(PipelineTest, EmptyLogIsFine) {
  RasLog log;
  const PreprocessStats stats = preprocess(log);
  EXPECT_EQ(stats.raw_records, 0u);
  EXPECT_EQ(stats.unique_events, 0u);
}

}  // namespace
}  // namespace bglpred
