// Tests for the extension modules: LogQuery, binary I/O, lead-time
// analysis, rule pruning, and cross-category correlation.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/three_phase.hpp"
#include "eval/lead_time.hpp"
#include "mining/event_sets.hpp"
#include "mining/pruning.hpp"
#include "raslog/binary_io.hpp"
#include "simgen/generator.hpp"
#include "stats/correlation.hpp"
#include "taxonomy/query.hpp"

namespace bglpred {
namespace {

RasRecord event(TimePoint t, const char* name,
                bgl::Location loc = bgl::Location::make_compute_chip(0, 0,
                                                                     0, 0),
                bgl::JobId job = 1) {
  const SubcategoryId id = catalog().find(name);
  EXPECT_NE(id, kUnclassified) << name;
  const SubcategoryInfo& info = catalog().info(id);
  RasRecord rec;
  rec.time = t;
  rec.subcategory = id;
  rec.severity = info.severity;
  rec.facility = info.facility;
  rec.location = loc;
  rec.job = job;
  return rec;
}

RasLog sample_log() {
  RasLog log;
  log.append_with_text(
      event(100, "torusFailure",
            bgl::Location::make_compute_chip(0, 0, 1, 2), 7),
      "a");
  log.append_with_text(
      event(200, "maskInfo", bgl::Location::make_compute_chip(0, 1, 3, 4),
            8),
      "b");
  log.append_with_text(
      event(300, "socketReadFailure",
            bgl::Location::make_io_node(0, 0, 2, 0), 7),
      "c");
  log.append_with_text(
      event(400, "kernelPanicFailure",
            bgl::Location::make_compute_chip(0, 1, 5, 6), 9),
      "d");
  return log;
}

// ---- LogQuery -----------------------------------------------------------

TEST(LogQueryTest, TimeRange) {
  const RasLog log = sample_log();
  EXPECT_EQ(LogQuery(log).between(150, 350).count(), 2u);
  EXPECT_EQ(LogQuery(log).between(0, 100).count(), 0u);
}

TEST(LogQueryTest, SeverityFilters) {
  const RasLog log = sample_log();
  EXPECT_EQ(LogQuery(log).fatal_only().count(), 3u);
  EXPECT_EQ(LogQuery(log).min_severity(Severity::kWarning).count(), 3u);
}

TEST(LogQueryTest, CategoryAndSubcategory) {
  const RasLog log = sample_log();
  EXPECT_EQ(LogQuery(log).in_main_category(MainCategory::kNetwork).count(),
            1u);
  EXPECT_EQ(LogQuery(log)
                .of_subcategory(catalog().find("kernelPanicFailure"))
                .count(),
            1u);
}

TEST(LogQueryTest, LocationSubtreeAndJob) {
  const RasLog log = sample_log();
  // Midplane 0 contains the torus chip and the I/O node.
  EXPECT_EQ(
      LogQuery(log).under(bgl::Location::make_midplane(0, 0)).count(), 2u);
  EXPECT_EQ(LogQuery(log).of_job(7).count(), 2u);
}

TEST(LogQueryTest, FiltersCompose) {
  const RasLog log = sample_log();
  const auto hits = LogQuery(log)
                        .fatal_only()
                        .under(bgl::Location::make_midplane(0, 0))
                        .between(0, 250)
                        .records();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].time, 100);
}

TEST(LogQueryTest, MaterializeAndFirst) {
  const RasLog log = sample_log();
  const RasLog fatal = LogQuery(log).fatal_only().materialize();
  EXPECT_EQ(fatal.size(), 3u);
  EXPECT_EQ(fatal.text_of(fatal.records()[0]), "a");
  const auto first = LogQuery(log).of_job(9).first();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->time, 400);
  EXPECT_FALSE(LogQuery(log).of_job(999).first().has_value());
}

TEST(LogQueryTest, CustomPredicate) {
  const RasLog log = sample_log();
  EXPECT_EQ(LogQuery(log)
                .where([](const RasRecord& rec) { return rec.time > 250; })
                .count(),
            2u);
}

// ---- binary I/O ------------------------------------------------------------

TEST(BinaryIoTest, RoundTripsSampleLog) {
  const RasLog log = sample_log();
  std::stringstream buffer;
  write_log_binary(buffer, log);
  const RasLog restored = read_log_binary(buffer);
  ASSERT_EQ(restored.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    const RasRecord& a = log.records()[i];
    const RasRecord& b = restored.records()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.job, b.job);
    EXPECT_EQ(a.location, b.location);
    EXPECT_EQ(a.event_type, b.event_type);
    EXPECT_EQ(a.facility, b.facility);
    EXPECT_EQ(a.severity, b.severity);
    EXPECT_EQ(a.subcategory, b.subcategory);
    EXPECT_EQ(log.text_of(a), restored.text_of(b));
  }
}

TEST(BinaryIoTest, RoundTripsGeneratedLogExactly) {
  GeneratedLog g = LogGenerator(SystemProfile::sdsc()).generate(0.01);
  std::stringstream buffer;
  write_log_binary(buffer, g.log);
  const RasLog restored = read_log_binary(buffer);
  ASSERT_EQ(restored.size(), g.log.size());
  for (std::size_t i = 0; i < g.log.size(); i += 137) {
    EXPECT_EQ(g.log.records()[i].time, restored.records()[i].time);
    EXPECT_EQ(g.log.text_of(g.log.records()[i]),
              restored.text_of(restored.records()[i]));
  }
}

TEST(BinaryIoTest, RejectsBadMagicAndTruncation) {
  {
    std::stringstream buffer("NOTALOG!");
    EXPECT_THROW(read_log_binary(buffer), ParseError);
  }
  {
    const RasLog log = sample_log();
    std::stringstream buffer;
    write_log_binary(buffer, log);
    std::string data = buffer.str();
    data.resize(data.size() - 5);  // chop the last record
    std::stringstream truncated(data);
    EXPECT_THROW(read_log_binary(truncated), ParseError);
  }
}

TEST(BinaryIoTest, FileRoundTrip) {
  const RasLog log = sample_log();
  const std::string path = testing::TempDir() + "/bglpred_bin_test.rasb";
  save_log_binary(path, log);
  const RasLog restored = load_log_binary(path);
  EXPECT_EQ(restored.size(), log.size());
  EXPECT_THROW(load_log_binary("/nonexistent/x.rasb"), Error);
}

// ---- lead time ---------------------------------------------------------------

Warning warn(TimePoint issue, TimePoint begin, TimePoint end) {
  Warning w;
  w.issued_at = issue;
  w.window_begin = begin;
  w.window_end = end;
  w.source = "test";
  return w;
}

TEST(LeadTimeTest, MeasuresFromEarliestCoveringWarning) {
  const std::vector<Warning> warnings{warn(100, 101, 700),
                                      warn(300, 301, 900)};
  const auto report = lead_time_report(warnings, {500});
  EXPECT_EQ(report.failures, 1u);
  EXPECT_EQ(report.covered, 1u);
  ASSERT_EQ(report.leads.size(), 1u);
  EXPECT_DOUBLE_EQ(report.leads[0], 400.0);  // earliest = issued at 100
}

TEST(LeadTimeTest, UncoveredFailuresExcluded) {
  const std::vector<Warning> warnings{warn(100, 101, 200)};
  const auto report = lead_time_report(warnings, {150, 500});
  EXPECT_EQ(report.failures, 2u);
  EXPECT_EQ(report.covered, 1u);
  EXPECT_DOUBLE_EQ(report.summary.mean, 50.0);
}

TEST(LeadTimeTest, ActionableFraction) {
  const std::vector<Warning> warnings{warn(0, 1, 10000)};
  const auto report = lead_time_report(warnings, {100, 400, 900});
  EXPECT_EQ(report.covered, 3u);
  EXPECT_DOUBLE_EQ(report.actionable_fraction(300), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.actionable_fraction(1000), 0.0);
}

TEST(LeadTimeTest, EmptyInputs) {
  const auto report = lead_time_report({}, {});
  EXPECT_EQ(report.failures, 0u);
  EXPECT_DOUBLE_EQ(report.actionable_fraction(60), 0.0);
}

// ---- rule pruning ---------------------------------------------------------------

Rule rule(Itemset body, std::vector<SubcategoryId> heads, double conf) {
  Rule r;
  r.body = std::move(body);
  r.heads = std::move(heads);
  r.confidence = conf;
  return r;
}

TEST(PruningTest, DropsDominatedSuperBody) {
  PruneStats stats;
  const auto kept = prune_redundant_rules(
      {rule({1}, {50}, 0.8), rule({1, 2}, {50}, 0.7)}, &stats);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].body, Itemset{1});
  EXPECT_EQ(stats.pruned, 1u);
}

TEST(PruningTest, KeepsMoreConfidentSpecificRule) {
  const auto kept = prune_redundant_rules(
      {rule({1}, {50}, 0.5), rule({1, 2}, {50}, 0.9)});
  EXPECT_EQ(kept.size(), 2u);  // the specific rule adds confidence
}

TEST(PruningTest, HeadsMustBeSuperset) {
  const auto kept = prune_redundant_rules(
      {rule({1}, {50}, 0.9), rule({1, 2}, {60}, 0.5)});
  EXPECT_EQ(kept.size(), 2u);  // different heads: no domination
}

TEST(PruningTest, MultiHeadDomination) {
  const auto kept = prune_redundant_rules(
      {rule({1}, {50, 60}, 0.9), rule({1, 3}, {50}, 0.4)});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].heads.size(), 2u);
}

TEST(PruningTest, BestMatchUnchangedOnRealRules) {
  // Property: pruning must not change best_match confidence on any
  // observed window drawn from the rules' own bodies.
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.05);
  ThreePhaseOptions opt;
  ThreePhasePredictor(opt).run_phase1(g.log);
  const TransactionDb db =
      extract_event_sets(g.log, 15 * kMinute, nullptr, 2.0);
  const RuleSet full = mine_rules(db, RuleOptions{});
  const RuleSet pruned = prune_redundant_rules(full);
  EXPECT_LE(pruned.size(), full.size());
  for (const Rule& r : full.rules()) {
    const Rule* a = full.best_match(r.body);
    const Rule* b = pruned.best_match(r.body);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NEAR(a->confidence, b->confidence, 1e-9)
        << itemset_to_string(r.body);
  }
}

// ---- correlation ---------------------------------------------------------------

TEST(CorrelationTest, DetectsInjectedCascade) {
  RasLog log;
  TimePoint t = 0;
  for (int i = 0; i < 60; ++i) {
    t += 6 * kHour;
    log.append_with_text(event(t, "torusFailure"), "n");
    log.append_with_text(event(t + 10 * kMinute, "socketReadFailure"),
                         "io");
  }
  log.sort_by_time();
  const CategoryCorrelation corr =
      category_correlation(log, 0, 30 * kMinute);
  const auto net = static_cast<std::size_t>(MainCategory::kNetwork);
  const auto ios = static_cast<std::size_t>(MainCategory::kIostream);
  EXPECT_NEAR(corr.conditional[net][ios], 1.0, 1e-9);
  EXPECT_NEAR(corr.conditional[ios][net], 0.0, 1e-9);
  EXPECT_EQ(corr.triggers[net], 60u);
  EXPECT_GT(corr.lift(MainCategory::kNetwork, MainCategory::kIostream),
            1.0);
}

TEST(CorrelationTest, RenderContainsAllCategories) {
  RasLog log;
  log.append_with_text(event(100, "torusFailure"), "x");
  const CategoryCorrelation corr = category_correlation(log, 0, kHour);
  const std::string out = corr.render();
  for (int c = 0; c < kMainCategoryCount; ++c) {
    EXPECT_NE(out.find(to_string(static_cast<MainCategory>(c))),
              std::string::npos);
  }
}

TEST(CorrelationTest, RejectsBadArguments) {
  RasLog log;
  log.append_with_text(event(100, "torusFailure"), "x");
  EXPECT_THROW(category_correlation(log, 10, 10), InvalidArgument);
}

}  // namespace
}  // namespace bglpred
