// Tests for the Table-3 catalog and the event classifier.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "raslog/log.hpp"
#include "taxonomy/catalog.hpp"
#include "taxonomy/classifier.hpp"

namespace bglpred {
namespace {

// ---- catalog: Table 3 structure ------------------------------------------

TEST(CatalogTest, Has101Subcategories) {
  EXPECT_EQ(catalog().size(), 101u);
}

TEST(CatalogTest, PerCategoryCountsMatchTable3) {
  // Application 12, Iostream 8, Kernel 20, Memory 22, Midplane 6,
  // Network 11, NodeCard 10, Other 12.
  const std::size_t expected[] = {12, 8, 20, 22, 6, 11, 10, 12};
  for (int c = 0; c < kMainCategoryCount; ++c) {
    EXPECT_EQ(catalog().by_main(static_cast<MainCategory>(c)).size(),
              expected[c])
        << to_string(static_cast<MainCategory>(c));
  }
}

TEST(CatalogTest, EveryCategoryHasFatalSubcategories) {
  // Table 4 shows fatal events in every main category.
  for (int c = 0; c < kMainCategoryCount; ++c) {
    EXPECT_FALSE(
        catalog().fatal_by_main(static_cast<MainCategory>(c)).empty())
        << to_string(static_cast<MainCategory>(c));
  }
}

TEST(CatalogTest, PaperExamplesPresent) {
  // Every event name the paper cites (Table 3 examples + Figure 3 rules).
  for (const char* name :
       {"loadProgramFailure", "loginFailure", "nodemapCreateFailure",
        "socketReadFailure", "streamReadFailure", "alignmentFailure",
        "dataAddressFailure", "instructionAddressFailure",
        "cachePrefetchFailure", "dataReadFailure", "dataStoreFailure",
        "parityFailure", "linkcardFailure", "ciodSignalFailure",
        "midplaneServiceWarning", "ethernetFailure", "rtsFailure",
        "torusFailure", "torusConnectionErrorInfo",
        "nodecardDiscoveryError", "nodecardAssemblyWarning",
        "BGLMasterRestartInfo", "CMCScontrolInfo", "linkcardServiceWarning",
        "nodeMapFileError", "nodeMapError", "controlNetworkNMCSError",
        "nodeConnectionFailure", "ddrErrorCorrectionInfo", "maskInfo",
        "ciodRestartInfo", "midplaneStartInfo", "controlNetworkInfo",
        "rtsLinkFailure", "nodecardUPDMismatch",
        "nodecardAssemblySevereDiscovery", "nodecardFunctionalityWarning",
        "midplaneLinkcardRestartWarning", "coredumpCreated",
        "cacheFailure", "endServiceWarning"}) {
    EXPECT_NE(catalog().find(name), kUnclassified) << name;
  }
}

TEST(CatalogTest, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const SubcategoryInfo& info : catalog().entries()) {
    EXPECT_TRUE(names.insert(info.name).second)
        << "duplicate name: " << info.name;
  }
}

TEST(CatalogTest, PhrasesArePairwiseNonSubstring) {
  // The classifier's longest-first matching assumes no phrase is a
  // substring of another phrase's generated text.
  const auto& entries = catalog().entries();
  for (const SubcategoryInfo& a : entries) {
    for (const SubcategoryInfo& b : entries) {
      if (a.id == b.id) {
        continue;
      }
      EXPECT_EQ(std::string_view(b.phrase).find(a.phrase),
                std::string_view::npos)
          << "'" << a.phrase << "' is a substring of '" << b.phrase << "'";
    }
  }
}

TEST(CatalogTest, SeverityNamingConvention) {
  // Names ending in "Failure" are fatal; Info/Warning names are not.
  for (const SubcategoryInfo& info : catalog().entries()) {
    const std::string name(info.name);
    if (name.size() > 7 && name.rfind("Failure") == name.size() - 7) {
      EXPECT_TRUE(info.fatal()) << name;
    }
    if (name.rfind("Info") != std::string::npos &&
        name.rfind("Info") == name.size() - 4) {
      EXPECT_EQ(info.severity, Severity::kInfo) << name;
    }
  }
}

TEST(CatalogTest, FatalAndNonFatalPartition) {
  EXPECT_EQ(catalog().fatal().size() + catalog().non_fatal().size(),
            catalog().size());
}

TEST(CatalogTest, FindUnknownReturnsUnclassified) {
  EXPECT_EQ(catalog().find("doesNotExist"), kUnclassified);
}

TEST(CatalogTest, InfoRejectsBadId) {
  EXPECT_THROW(catalog().info(static_cast<SubcategoryId>(10000)),
               InvalidArgument);
}

// ---- classifier -------------------------------------------------------------

TEST(ClassifierTest, ClassifiesEveryCatalogPhrase) {
  const EventClassifier classifier;
  for (const SubcategoryInfo& info : catalog().entries()) {
    const std::string text = std::string(info.phrase) + " seq=123";
    EXPECT_EQ(classifier.classify(text, info.facility, info.severity),
              info.id)
        << info.name;
  }
}

TEST(ClassifierTest, RecoversFromWrongFacility) {
  const EventClassifier classifier;
  const SubcategoryId torus = catalog().find("torusFailure");
  const std::string text =
      std::string(catalog().info(torus).phrase) + " detail";
  // Reported under the wrong facility: the cross-facility scan finds it.
  EXPECT_EQ(classifier.classify(text, Facility::kApp, Severity::kFatal),
            torus);
}

TEST(ClassifierTest, UnknownTextFallsBackWithinFacility) {
  const EventClassifier classifier;
  const SubcategoryId got = classifier.classify(
      "completely novel message text", Facility::kMemory, Severity::kInfo);
  ASSERT_NE(got, kUnclassified);
  EXPECT_EQ(catalog().info(got).facility, Facility::kMemory);
  EXPECT_EQ(catalog().info(got).main, MainCategory::kMemory);
}

TEST(ClassifierTest, FallbackPrefersMatchingSeverity) {
  const EventClassifier classifier;
  const SubcategoryId got = classifier.classify(
      "novel fatal memory text", Facility::kMemory, Severity::kFatal);
  EXPECT_TRUE(is_fatal(catalog().info(got).severity));
}

TEST(ClassifierTest, ClassifyAllFillsSubcategories) {
  const EventClassifier classifier;
  RasLog log;
  for (const SubcategoryInfo& info : catalog().entries()) {
    RasRecord rec;
    rec.time = 100;
    rec.facility = info.facility;
    rec.severity = info.severity;
    rec.location = bgl::Location::make_midplane(0, 0);
    log.append_with_text(rec, std::string(info.phrase) + " x=1");
  }
  const ClassificationStats stats = classifier.classify_all(log);
  EXPECT_EQ(stats.total, catalog().size());
  EXPECT_EQ(stats.classified_by_fallback, 0u);
  std::size_t categorized = 0;
  for (int c = 0; c < kMainCategoryCount; ++c) {
    categorized += stats.per_main[static_cast<std::size_t>(c)];
  }
  EXPECT_EQ(categorized, catalog().size());
  for (const RasRecord& rec : log.records()) {
    EXPECT_NE(rec.subcategory, kUnclassified);
  }
}

}  // namespace
}  // namespace bglpred
