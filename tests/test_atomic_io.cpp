// Crash-safety tests for atomic_write_file: a process killed in the
// middle of publishing a file (mid-tmp-write or between fsync and
// rename) must leave the previous contents untouched and loadable.
// The kill is a real one — the test forks, arms a crash point in the
// child, and asserts on what the dead child left on disk.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "common/atomic_io.hpp"
#include "raslog/binary_io.hpp"
#include "raslog/log.hpp"
#include "simgen/generator.hpp"

namespace bglpred {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// Forks, runs `victim` in the child with `point` armed, and expects
/// the child to die with the crash hook's exit code (42).
template <typename Victim>
void run_crashing_child(detail::AtomicCrashPoint point, Victim victim) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    detail::set_atomic_crash_point_for_test(point);
    victim();
    _exit(0);  // the crash point should have fired before this
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42) << "crash point never fired";
}

TEST(AtomicIoTest, WriteReplacesContents) {
  const std::string path = testing::TempDir() + "/atomic_plain.bin";
  atomic_write_file(path, "first contents");
  atomic_write_file(path, "second contents");
  EXPECT_EQ(slurp(path), "second contents");
  std::filesystem::remove(path);
}

TEST(AtomicIoTest, KillMidTmpWriteLeavesOldFile) {
  const std::string path = testing::TempDir() + "/atomic_midwrite.bin";
  const std::string old_bytes(4096, 'a');
  const std::string new_bytes(8192, 'b');
  atomic_write_file(path, old_bytes);
  run_crashing_child(detail::AtomicCrashPoint::kMidTmpWrite,
                     [&] { atomic_write_file(path, new_bytes); });
  EXPECT_EQ(slurp(path), old_bytes);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(AtomicIoTest, KillBeforeRenameLeavesOldFile) {
  const std::string path = testing::TempDir() + "/atomic_prerename.bin";
  atomic_write_file(path, "old");
  run_crashing_child(detail::AtomicCrashPoint::kBeforeRename,
                     [&] { atomic_write_file(path, "new"); });
  EXPECT_EQ(slurp(path), "old");
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

TEST(AtomicIoTest, KillMidSaveLeavesPreviousBinaryLogLoadable) {
  const std::string path = testing::TempDir() + "/atomic_log.rasb";
  const GeneratedLog small = LogGenerator(SystemProfile::anl()).generate(0.002);
  save_log_binary(path, small.log);
  const std::string before = slurp(path);

  const GeneratedLog bigger = LogGenerator(SystemProfile::anl()).generate(0.01);
  run_crashing_child(detail::AtomicCrashPoint::kMidTmpWrite,
                     [&] { save_log_binary(path, bigger.log); });

  // The interrupted save must not have torn the previous dump: the
  // bytes are untouched and the strict reader still accepts them.
  EXPECT_EQ(slurp(path), before);
  const RasLog reloaded = load_log_binary(path);
  EXPECT_EQ(reloaded.size(), small.log.size());
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");
}

}  // namespace
}  // namespace bglpred
