// TSan-targeted stress tests for the thread pool and parallel loops.
//
// These tests exist to give ThreadSanitizer (and ASan) something to bite
// on: concurrent submitters, destructor drains racing final submissions,
// exception propagation under contention, and nested pool use. They
// assert functional outcomes too, so they still catch logic bugs in
// uninstrumented builds. Iteration counts are sized to finish in a few
// seconds on one core while creating real interleavings on many.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace bglpred {
namespace {

TEST(ThreadPoolStressTest, ConcurrentSubmittersAllTasksRun) {
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 200;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &executed] {
        for (int i = 0; i < kTasksEach; ++i) {
          pool.submit([&executed] {
            executed.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    for (auto& t : submitters) {
      t.join();
    }
  }  // destructor must drain everything the submitters queued
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
}

TEST(ThreadPoolStressTest, DrainRunsTasksQueuedBehindSlowOnes) {
  // Queue a slow task followed by a burst, then destroy the pool
  // immediately: drain semantics require every queued task to run even
  // though the destructor is already waiting.
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    for (int i = 0; i < 500; ++i) {
      pool.submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(executed.load(), 508);
}

TEST(ThreadPoolStressTest, FuturesPublishResultsAcrossThreads) {
  // future::get must establish happens-before with the worker's write;
  // the non-atomic payload would trip TSan if the synchronization broke.
  ThreadPool pool(3);
  constexpr std::size_t kTasks = 300;
  std::vector<std::future<std::size_t>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i] { return i * 3; }));
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[i].get(), i * 3);
  }
}

TEST(ThreadPoolStressTest, WorkersCanSubmitFollowUpWork) {
  // Tasks submitting to their own pool must not deadlock: submit only
  // holds the queue lock briefly and never blocks on task completion.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> second_wave;
  std::mutex wave_mutex;
  {
    std::vector<std::future<void>> first_wave;
    for (int i = 0; i < 50; ++i) {
      first_wave.push_back(
          pool.submit([&pool, &executed, &wave_mutex, &second_wave] {
            auto follow_up = pool.submit([&executed] {
              executed.fetch_add(1, std::memory_order_relaxed);
            });
            std::lock_guard<std::mutex> lock(wave_mutex);
            second_wave.push_back(std::move(follow_up));
          }));
    }
    for (auto& f : first_wave) {
      f.get();
    }
  }
  for (auto& f : second_wave) {
    f.get();
  }
  EXPECT_EQ(executed.load(), 50);
}

TEST(ParallelForStressTest, ConcurrentLoopsShareOnePool) {
  // Several parallel_for calls race on the same pool; each must see only
  // its own indices and all of them.
  ThreadPool pool(4);
  constexpr int kLoops = 4;
  constexpr std::size_t kRange = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kLoops);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kRange);
  }
  std::vector<std::thread> drivers;
  drivers.reserve(kLoops);
  for (int loop = 0; loop < kLoops; ++loop) {
    drivers.emplace_back([&, loop] {
      parallel_for(
          0, kRange,
          [&, loop](std::size_t i) {
            hits[static_cast<std::size_t>(loop)][i].fetch_add(
                1, std::memory_order_relaxed);
          },
          pool);
    });
  }
  for (auto& d : drivers) {
    d.join();
  }
  for (const auto& loop_hits : hits) {
    for (const auto& h : loop_hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelForStressTest, ExceptionUnderContentionStillPropagates) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> survivors{0};
    EXPECT_THROW(parallel_for(
                     0, 5000,
                     [&](std::size_t i) {
                       if (i % 1250 == 613) {
                         throw std::runtime_error("contended boom");
                       }
                       survivors.fetch_add(1, std::memory_order_relaxed);
                     },
                     pool),
                 std::runtime_error);
    // Every non-throwing index in completed blocks ran; the exact count
    // depends on scheduling, but it can never exceed the throw-free total.
    EXPECT_LE(survivors.load(), 4996);
  }
}

TEST(ParallelForStressTest, ParallelMapUnderConcurrentCallers) {
  ThreadPool pool(3);
  constexpr int kCallers = 3;
  std::vector<std::vector<std::size_t>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      results[static_cast<std::size_t>(c)] = parallel_map(
          1000,
          [c](std::size_t i) {
            return i + static_cast<std::size_t>(c) * 1000000;
          },
          pool);
    });
  }
  for (auto& t : callers) {
    t.join();
  }
  for (int c = 0; c < kCallers; ++c) {
    const auto& out = results[static_cast<std::size_t>(c)];
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], i + static_cast<std::size_t>(c) * 1000000);
    }
  }
}

}  // namespace
}  // namespace bglpred
