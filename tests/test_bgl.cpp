// Tests for the BG/L machine model: locations, topology, torus, jobs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bgl/location.hpp"
#include "bgl/scheduler.hpp"
#include "bgl/topology.hpp"
#include "bgl/torus.hpp"
#include "common/error.hpp"

namespace bglpred::bgl {
namespace {

// ---- Location -----------------------------------------------------------

TEST(LocationTest, FormatsCanonicalCodes) {
  EXPECT_EQ(Location::make_rack(0).str(), "R00");
  EXPECT_EQ(Location::make_midplane(0, 1).str(), "R00-M1");
  EXPECT_EQ(Location::make_node_card(0, 1, 7).str(), "R00-M1-N07");
  EXPECT_EQ(Location::make_compute_chip(0, 1, 7, 21).str(),
            "R00-M1-N07-C21");
  EXPECT_EQ(Location::make_io_node(0, 0, 3, 2).str(), "R00-M0-N03-I02");
  EXPECT_EQ(Location::make_link_card(0, 1, 3).str(), "R00-M1-L3");
  EXPECT_EQ(Location::make_service_card(0, 0).str(), "R00-M0-S");
}

TEST(LocationTest, ParseRoundTripsEveryKind) {
  const Location locs[] = {
      Location::make_rack(3),
      Location::make_midplane(3, 1),
      Location::make_node_card(3, 0, 15),
      Location::make_compute_chip(3, 1, 15, 31),
      Location::make_io_node(3, 0, 2, 3),
      Location::make_link_card(3, 1, 2),
      Location::make_service_card(3, 1),
  };
  for (const Location& loc : locs) {
    EXPECT_EQ(parse_location(loc.str()), loc) << loc.str();
  }
}

TEST(LocationTest, ParseRejectsMalformedCodes) {
  EXPECT_THROW(parse_location(""), ParseError);
  EXPECT_THROW(parse_location("X00"), ParseError);
  EXPECT_THROW(parse_location("R00-"), ParseError);
  EXPECT_THROW(parse_location("R00-M"), ParseError);
  EXPECT_THROW(parse_location("R00-M0-N01-C02-garbage"), ParseError);
  EXPECT_THROW(parse_location("R00-M0-Q1"), ParseError);
}

TEST(LocationTest, ContainmentHierarchy) {
  const Location rack = Location::make_rack(0);
  const Location mid = Location::make_midplane(0, 1);
  const Location card = Location::make_node_card(0, 1, 4);
  const Location chip = Location::make_compute_chip(0, 1, 4, 9);
  EXPECT_TRUE(rack.contains(chip));
  EXPECT_TRUE(mid.contains(chip));
  EXPECT_TRUE(card.contains(chip));
  EXPECT_FALSE(Location::make_midplane(0, 0).contains(chip));
  EXPECT_FALSE(Location::make_node_card(0, 1, 5).contains(chip));
  EXPECT_FALSE(chip.contains(card));
  EXPECT_TRUE(chip.contains(chip));
}

TEST(LocationTest, ParentAccessors) {
  const Location chip = Location::make_compute_chip(2, 1, 4, 9);
  EXPECT_EQ(chip.parent_midplane(), Location::make_midplane(2, 1));
  EXPECT_EQ(chip.parent_node_card(), Location::make_node_card(2, 1, 4));
  EXPECT_THROW(Location::make_rack(0).parent_midplane(), InvalidArgument);
  EXPECT_THROW(Location::make_midplane(0, 0).parent_node_card(),
               InvalidArgument);
}

TEST(LocationTest, OrderingIsDeterministic) {
  std::set<Location> set;
  set.insert(Location::make_compute_chip(0, 0, 0, 1));
  set.insert(Location::make_compute_chip(0, 0, 0, 0));
  set.insert(Location::make_midplane(0, 0));
  EXPECT_EQ(set.size(), 3u);
}

// ---- Topology ------------------------------------------------------------

TEST(TopologyTest, AnlInventoryMatchesPaper) {
  const MachineConfig cfg = MachineConfig::anl();
  EXPECT_EQ(cfg.total_compute_chips(), 1024u);  // 1024 compute nodes
  EXPECT_EQ(cfg.total_io_nodes(), 32u);         // 32 I/O nodes
  EXPECT_EQ(cfg.total_midplanes(), 2u);
  EXPECT_EQ(cfg.total_node_cards(), 32u);
}

TEST(TopologyTest, SdscInventoryMatchesPaper) {
  const MachineConfig cfg = MachineConfig::sdsc();
  EXPECT_EQ(cfg.total_compute_chips(), 1024u);  // 1024 compute nodes
  EXPECT_EQ(cfg.total_io_nodes(), 128u);        // I/O-rich: 128 I/O nodes
}

TEST(TopologyTest, EnumerationsMatchCounts) {
  const Topology topo(MachineConfig::anl());
  EXPECT_EQ(topo.compute_chips().size(), 1024u);
  EXPECT_EQ(topo.io_nodes().size(), 32u);
  EXPECT_EQ(topo.node_cards().size(), 32u);
  EXPECT_EQ(topo.midplanes().size(), 2u);
  EXPECT_EQ(topo.link_cards().size(), 8u);
}

TEST(TopologyTest, ChipsAreUnique) {
  const Topology topo(MachineConfig::anl());
  const auto chips = topo.compute_chips();
  const std::set<Location> unique(chips.begin(), chips.end());
  EXPECT_EQ(unique.size(), chips.size());
}

TEST(TopologyTest, ChipAtInvertsScanOrder) {
  const Topology topo(MachineConfig::anl());
  const auto chips = topo.compute_chips();
  for (std::uint32_t i = 0; i < chips.size(); i += 97) {
    EXPECT_EQ(topo.compute_chip_at(i), chips[i]);
  }
  EXPECT_THROW(topo.compute_chip_at(1024), InvalidArgument);
}

TEST(TopologyTest, IoNodeForChipStaysOnNodeCard) {
  const Topology topo(MachineConfig::sdsc());
  const Location chip = Location::make_compute_chip(0, 1, 6, 17);
  const Location io = topo.io_node_for(chip);
  EXPECT_EQ(io.kind, LocationKind::kIoNode);
  EXPECT_EQ(io.midplane, chip.midplane);
  EXPECT_EQ(io.node_card, chip.node_card);
}

TEST(TopologyTest, RejectsDegenerateConfig) {
  MachineConfig cfg;
  cfg.racks = 0;
  EXPECT_THROW(Topology{cfg}, InvalidArgument);
}

// ---- Torus -----------------------------------------------------------------

TEST(TorusTest, FullMidplaneIs8x8x8) {
  const Topology topo(MachineConfig::anl());
  const TorusMap torus(topo);
  const auto dims = torus.dims();
  EXPECT_EQ(dims[0], 8);
  EXPECT_EQ(dims[1], 8);
  EXPECT_EQ(dims[2], 16);  // two midplanes stacked along Z
}

TEST(TorusTest, CoordRoundTrip) {
  const Topology topo(MachineConfig::anl());
  const TorusMap torus(topo);
  for (std::uint32_t i = 0; i < 1024; i += 31) {
    const Location chip = topo.compute_chip_at(i);
    EXPECT_EQ(torus.chip_at(torus.coord_of(chip)), chip);
  }
}

TEST(TorusTest, NeighborsAreDistanceOne) {
  const Topology topo(MachineConfig::anl());
  const TorusMap torus(topo);
  const Location chip = Location::make_compute_chip(0, 0, 3, 12);
  for (const TorusCoord& n : torus.neighbors(torus.coord_of(chip))) {
    EXPECT_EQ(torus.distance(chip, torus.chip_at(n)), 1);
  }
}

TEST(TorusTest, DistanceWrapsAround) {
  const Topology topo(MachineConfig::anl());
  const TorusMap torus(topo);
  const Location a = torus.chip_at({0, 0, 0});
  const Location b = torus.chip_at({7, 0, 0});
  EXPECT_EQ(torus.distance(a, b), 1);  // wraparound along X
}

TEST(TorusTest, LineXStaysOnRow) {
  const Topology topo(MachineConfig::anl());
  const TorusMap torus(topo);
  const Location origin = torus.chip_at({5, 2, 9});
  const auto line = torus.line_x(origin, 4);
  ASSERT_EQ(line.size(), 4u);
  const TorusCoord o = torus.coord_of(origin);
  for (const Location& loc : line) {
    const TorusCoord c = torus.coord_of(loc);
    EXPECT_EQ(c.y, o.y);
    EXPECT_EQ(c.z, o.z);
  }
}

// ---- Job trace --------------------------------------------------------------

TEST(JobTraceTest, JobsRespectSpanAndMidplane) {
  const Topology topo(MachineConfig::anl());
  Rng rng(1);
  const TimeSpan span{0, 30 * kDay};
  const JobTrace trace =
      JobTrace::generate(topo, span, WorkloadParams{}, rng);
  EXPECT_GT(trace.size(), 0u);
  for (const JobRecord& job : trace.jobs()) {
    EXPECT_GE(job.span.begin, span.begin);
    EXPECT_LE(job.span.end, span.end);
    EXPECT_EQ(job.partition.kind, LocationKind::kMidplane);
    EXPECT_NE(job.id, kNoJob);
  }
}

TEST(JobTraceTest, JobsOnSameMidplaneDoNotOverlap) {
  const Topology topo(MachineConfig::anl());
  Rng rng(2);
  const JobTrace trace = JobTrace::generate(topo, TimeSpan{0, 60 * kDay},
                                            WorkloadParams{}, rng);
  std::map<Location, TimePoint> last_end;
  for (const JobRecord& job : trace.jobs()) {
    auto [it, inserted] = last_end.try_emplace(job.partition, job.span.end);
    if (!inserted) {
      EXPECT_GE(job.span.begin, it->second);
      it->second = job.span.end;
    }
  }
}

TEST(JobTraceTest, LookupFindsRunningJob) {
  const Topology topo(MachineConfig::anl());
  Rng rng(3);
  const JobTrace trace = JobTrace::generate(topo, TimeSpan{0, 30 * kDay},
                                            WorkloadParams{}, rng);
  const JobRecord& job = trace.jobs().front();
  const Location chip = Location::make_compute_chip(
      job.partition.rack, job.partition.midplane, 0, 0);
  EXPECT_EQ(trace.job_at(chip, job.span.begin), job.id);
  EXPECT_EQ(trace.job_at(chip, job.span.end - 1), job.id);
}

TEST(JobTraceTest, InfrastructureUnitsReportNoJob) {
  const Topology topo(MachineConfig::anl());
  Rng rng(4);
  const JobTrace trace = JobTrace::generate(topo, TimeSpan{0, 10 * kDay},
                                            WorkloadParams{}, rng);
  EXPECT_EQ(trace.job_at(Location::make_link_card(0, 0, 1), 5 * kDay),
            kNoJob);
  EXPECT_EQ(trace.job_at(Location::make_service_card(0, 0), 5 * kDay),
            kNoJob);
}

TEST(JobTraceTest, IdleGapsYieldNoJob) {
  const Topology topo(MachineConfig::anl());
  Rng rng(5);
  const JobTrace trace = JobTrace::generate(topo, TimeSpan{0, 30 * kDay},
                                            WorkloadParams{}, rng);
  // Find two consecutive jobs on one midplane with a gap and probe it.
  std::map<Location, std::vector<const JobRecord*>> by_mid;
  for (const JobRecord& job : trace.jobs()) {
    by_mid[job.partition].push_back(&job);
  }
  bool probed = false;
  for (const auto& [mid, jobs] : by_mid) {
    for (std::size_t i = 0; i + 1 < jobs.size(); ++i) {
      if (jobs[i + 1]->span.begin > jobs[i]->span.end + 1) {
        const Location chip =
            Location::make_compute_chip(mid.rack, mid.midplane, 0, 0);
        EXPECT_EQ(trace.job_at(chip, jobs[i]->span.end), kNoJob);
        probed = true;
        break;
      }
    }
    if (probed) {
      break;
    }
  }
  EXPECT_TRUE(probed);
}

}  // namespace
}  // namespace bglpred::bgl
