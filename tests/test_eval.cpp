// Tests for confusion metrics, warning matching, episode merging, and
// cross-validation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "eval/cross_validation.hpp"
#include "eval/matcher.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

Warning make_warning(TimePoint begin, TimePoint end, const char* source,
                     bool mergeable = false, double confidence = 0.5) {
  Warning w;
  w.issued_at = begin - 1;
  w.window_begin = begin;
  w.window_end = end;
  w.confidence = confidence;
  w.source = source;
  w.mergeable = mergeable;
  return w;
}

// ---- Confusion ----------------------------------------------------------

TEST(ConfusionTest, Metrics) {
  Confusion c;
  c.covered_failures = 3;
  c.missed_failures = 1;
  c.true_warnings = 3;
  c.false_warnings = 2;
  EXPECT_DOUBLE_EQ(c.precision(), 0.6);
  EXPECT_DOUBLE_EQ(c.recall(), 0.75);
  EXPECT_NEAR(c.f1(), 2 * 0.6 * 0.75 / 1.35, 1e-12);
}

TEST(ConfusionTest, EmptyIsZeroNotNan) {
  const Confusion c;
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(ConfusionTest, Accumulation) {
  Confusion a;
  a.covered_failures = 1;
  a.false_warnings = 2;
  Confusion b;
  b.covered_failures = 2;
  b.true_warnings = 3;
  const Confusion sum = a + b;
  EXPECT_EQ(sum.covered_failures, 3u);
  EXPECT_EQ(sum.true_warnings, 3u);
  EXPECT_EQ(sum.false_warnings, 2u);
}

// ---- matching ------------------------------------------------------------

TEST(MatcherTest, CoversFailuresInsideWindows) {
  const std::vector<Warning> warnings{make_warning(100, 200, "s"),
                                      make_warning(500, 600, "s")};
  const std::vector<TimePoint> failures{150, 550, 900};
  const Confusion c = match_warnings(warnings, failures);
  EXPECT_EQ(c.covered_failures, 2u);
  EXPECT_EQ(c.missed_failures, 1u);
  EXPECT_EQ(c.true_warnings, 2u);
  EXPECT_EQ(c.false_warnings, 0u);
}

TEST(MatcherTest, OneWarningCoversMultipleFailures) {
  const std::vector<Warning> warnings{make_warning(100, 1000, "s")};
  const std::vector<TimePoint> failures{200, 300, 400};
  const Confusion c = match_warnings(warnings, failures);
  EXPECT_EQ(c.covered_failures, 3u);
  EXPECT_EQ(c.true_warnings, 1u);
  EXPECT_EQ(c.false_warnings, 0u);
}

TEST(MatcherTest, MultipleWarningsCoverOneFailure) {
  const std::vector<Warning> warnings{make_warning(100, 300, "s"),
                                      make_warning(150, 350, "s")};
  const std::vector<TimePoint> failures{250};
  const Confusion c = match_warnings(warnings, failures);
  EXPECT_EQ(c.covered_failures, 1u);
  EXPECT_EQ(c.true_warnings, 2u);  // both saw the failure
}

TEST(MatcherTest, BoundariesAreInclusive) {
  const std::vector<Warning> warnings{make_warning(100, 200, "s")};
  EXPECT_EQ(match_warnings(warnings, {100}).covered_failures, 1u);
  EXPECT_EQ(match_warnings(warnings, {200}).covered_failures, 1u);
  EXPECT_EQ(match_warnings(warnings, {99}).covered_failures, 0u);
  EXPECT_EQ(match_warnings(warnings, {201}).covered_failures, 0u);
}

TEST(MatcherTest, EmptyInputs) {
  EXPECT_EQ(match_warnings({}, {100}).missed_failures, 1u);
  const std::vector<Warning> warnings{make_warning(1, 2, "s")};
  const Confusion c = match_warnings(warnings, {});
  EXPECT_EQ(c.false_warnings, 1u);
  EXPECT_EQ(c.failures(), 0u);
}

TEST(MatcherTest, RequiresSortedInputs) {
  const std::vector<Warning> unsorted{make_warning(500, 600, "s"),
                                      make_warning(100, 200, "s")};
  EXPECT_THROW(match_warnings(unsorted, {}), InvalidArgument);
  const std::vector<Warning> ok{make_warning(100, 200, "s")};
  EXPECT_THROW(match_warnings(ok, {300, 100}), InvalidArgument);
}

// ---- episode merging ---------------------------------------------------------

TEST(MergeEpisodesTest, MergesOverlappingSameSourceMergeable) {
  auto merged = merge_episodes({make_warning(100, 300, "rule", true, 0.5),
                                make_warning(200, 400, "rule", true, 0.8)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].window_begin, 100);
  EXPECT_EQ(merged[0].window_end, 400);
  EXPECT_DOUBLE_EQ(merged[0].confidence, 0.8);  // max
}

TEST(MergeEpisodesTest, AdjacentIntervalsMerge) {
  auto merged = merge_episodes({make_warning(100, 200, "rule", true),
                                make_warning(201, 300, "rule", true)});
  EXPECT_EQ(merged.size(), 1u);
}

TEST(MergeEpisodesTest, GapsStaySeparate) {
  auto merged = merge_episodes({make_warning(100, 200, "rule", true),
                                make_warning(250, 300, "rule", true)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeEpisodesTest, DifferentSourcesDoNotMerge) {
  auto merged = merge_episodes({make_warning(100, 300, "rule", true),
                                make_warning(150, 400, "other", true)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeEpisodesTest, NonMergeableWarningsPassThrough) {
  auto merged = merge_episodes({make_warning(100, 300, "stat", false),
                                make_warning(150, 400, "stat", false)});
  EXPECT_EQ(merged.size(), 2u);
}

TEST(MergeEpisodesTest, SortsUnsortedInput) {
  auto merged = merge_episodes({make_warning(500, 600, "r", true),
                                make_warning(100, 550, "r", true)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].window_begin, 100);
  EXPECT_EQ(merged[0].window_end, 600);
}

TEST(MergeEpisodesTest, ChainOfOverlapsCollapses) {
  std::vector<Warning> warnings;
  for (int i = 0; i < 10; ++i) {
    warnings.push_back(make_warning(100 + i * 50, 100 + i * 50 + 80,
                                    "rule", true));
  }
  const auto merged = merge_episodes(std::move(warnings));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].window_begin, 100);
  EXPECT_EQ(merged[0].window_end, 100 + 9 * 50 + 80);
}

// ---- cross-validation -----------------------------------------------------------

RasRecord event(TimePoint t, const char* name) {
  const SubcategoryId id = catalog().find(name);
  const SubcategoryInfo& info = catalog().info(id);
  RasRecord rec;
  rec.time = t;
  rec.subcategory = id;
  rec.severity = info.severity;
  rec.facility = info.facility;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
  return rec;
}

// A predictor that warns right after every "nodeMapFileError" — the
// synthetic log pairs each with a failure 60 s later, so it is perfect.
class OracleBase final : public BasePredictor {
 public:
  std::string name() const override { return "oracle"; }
  void train(const LogView& training) override { (void)training; }
  void reset() override {}
  std::optional<Warning> observe(const RasRecord& rec) override {
    if (rec.subcategory != catalog().find("nodeMapFileError")) {
      return std::nullopt;
    }
    Warning w;
    w.issued_at = rec.time;
    w.window_begin = rec.time + 1;
    w.window_end = rec.time + 10 * kMinute;
    w.confidence = 1.0;
    w.source = name();
    return w;
  }
};

RasLog paired_log(int pairs) {
  RasLog log;
  for (int i = 0; i < pairs; ++i) {
    const TimePoint t = i * kHour;
    log.append_with_text(event(t, "nodeMapFileError"), "p");
    log.append_with_text(event(t + 60, "nodemapCreateFailure"), "f");
  }
  return log;
}

TEST(CrossValidationTest, PerfectPredictorScoresPerfectly) {
  const RasLog log = paired_log(50);
  const CvResult result = cross_validate(
      log, 10, [] { return std::make_unique<OracleBase>(); });
  EXPECT_DOUBLE_EQ(result.macro_precision, 1.0);
  EXPECT_DOUBLE_EQ(result.macro_recall, 1.0);
  EXPECT_EQ(result.pooled.covered_failures, 50u);
  EXPECT_EQ(result.pooled.false_warnings, 0u);
  EXPECT_EQ(result.folds.size(), 10u);
}

TEST(CrossValidationTest, FoldsPartitionTheLog) {
  const RasLog log = paired_log(50);
  const CvResult result = cross_validate(
      log, 10, [] { return std::make_unique<OracleBase>(); });
  std::size_t total_records = 0;
  std::size_t total_failures = 0;
  for (const FoldResult& fold : result.folds) {
    total_records += fold.test_records;
    total_failures += fold.test_failures;
  }
  EXPECT_EQ(total_records, log.size());
  EXPECT_EQ(total_failures, 50u);
}

TEST(CrossValidationTest, NeverPredictorHasZeroRecall) {
  class Silent final : public BasePredictor {
   public:
    std::string name() const override { return "silent"; }
    void train(const LogView&) override {}
    void reset() override {}
    std::optional<Warning> observe(const RasRecord&) override {
      return std::nullopt;
    }
  };
  const RasLog log = paired_log(30);
  const CvResult result =
      cross_validate(log, 5, [] { return std::make_unique<Silent>(); });
  EXPECT_DOUBLE_EQ(result.macro_recall, 0.0);
  EXPECT_EQ(result.pooled.missed_failures, 30u);
}

TEST(CrossValidationTest, RejectsBadArguments) {
  const RasLog log = paired_log(5);
  const auto factory = [] { return std::make_unique<OracleBase>(); };
  EXPECT_THROW(cross_validate(log, 1, factory), InvalidArgument);
  RasLog tiny;
  tiny.append_with_text(event(0, "torusFailure"), "x");
  EXPECT_THROW(cross_validate(tiny, 5, factory), InvalidArgument);
}

TEST(EvaluateSplitTest, MergesRuleEpisodesBeforeCounting) {
  // A base that fires a mergeable warning on every non-fatal event.
  class Chatty final : public BasePredictor {
   public:
    std::string name() const override { return "chatty"; }
    void train(const LogView&) override {}
    void reset() override {}
    std::optional<Warning> observe(const RasRecord& rec) override {
      if (rec.fatal()) {
        return std::nullopt;
      }
      Warning w;
      w.issued_at = rec.time;
      w.window_begin = rec.time + 1;
      w.window_end = rec.time + 10 * kMinute;
      w.confidence = 0.9;
      w.source = name();
      w.mergeable = true;
      return w;
    }
  };
  RasLog test;
  // Five chatty triggers one minute apart, one failure at the end.
  for (int i = 0; i < 5; ++i) {
    test.append_with_text(event(i * kMinute, "maskInfo"), "m");
  }
  test.append_with_text(event(5 * kMinute, "cacheFailure"), "f");
  RasLog train = paired_log(2);
  Chatty predictor;
  const FoldResult result = evaluate_split(train, test, predictor);
  // All five warnings merge into one episode that covers the failure.
  EXPECT_EQ(result.warnings, 1u);
  EXPECT_EQ(result.confusion.true_warnings, 1u);
  EXPECT_EQ(result.confusion.false_warnings, 0u);
  EXPECT_EQ(result.confusion.covered_failures, 1u);
}

}  // namespace
}  // namespace bglpred
