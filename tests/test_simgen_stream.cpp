// Streaming generator tests: record-for-record differential identity
// against the materializing oracle, seek reproducibility, boundary
// properties, exact calibration under modulators, config validation,
// and multi-stream routing.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "core/online.hpp"
#include "core/three_phase.hpp"
#include "preprocess/fused_ingest.hpp"
#include "simgen/generator.hpp"
#include "simgen/stream.hpp"

namespace bglpred {
namespace {

// Drains a streaming generator into one materialized log + aggregate
// truth (test helper only — the whole point of the stream is that real
// consumers never do this).
struct Drained {
  RasLog log;
  GroundTruth truth;
  std::vector<std::size_t> batch_sizes;
};

Drained drain(StreamingGenerator& gen) {
  Drained d;
  RecordBatch batch;
  while (gen.next(batch)) {
    d.batch_sizes.push_back(batch.log.size());
    accumulate_truth(d.truth, batch.truth);
    for (const RasRecord& rec : batch.log.records()) {
      d.log.append_with_text(rec, batch.log.text_of(rec));
    }
  }
  return d;
}

void expect_logs_identical(const RasLog& a, const RasLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const RasRecord& ra = a.records()[i];
    const RasRecord& rb = b.records()[i];
    ASSERT_EQ(ra.time, rb.time) << "record " << i;
    ASSERT_EQ(ra.location, rb.location) << "record " << i;
    ASSERT_EQ(ra.job, rb.job) << "record " << i;
    ASSERT_EQ(ra.event_type, rb.event_type) << "record " << i;
    ASSERT_EQ(ra.facility, rb.facility) << "record " << i;
    ASSERT_EQ(ra.severity, rb.severity) << "record " << i;
    ASSERT_EQ(a.text_of(ra), b.text_of(rb)) << "record " << i;
  }
}

void expect_truth_identical(const GroundTruth& a, const GroundTruth& b) {
  EXPECT_EQ(a.true_chains, b.true_chains);
  EXPECT_EQ(a.false_chains, b.false_chains);
  EXPECT_EQ(a.background_events, b.background_events);
  EXPECT_EQ(a.unique_events, b.unique_events);
  EXPECT_EQ(a.fatal_per_category, b.fatal_per_category);
  ASSERT_EQ(a.fatal_occurrences.size(), b.fatal_occurrences.size());
  for (std::size_t i = 0; i < a.fatal_occurrences.size(); ++i) {
    const FaultOccurrence& fa = a.fatal_occurrences[i];
    const FaultOccurrence& fb = b.fatal_occurrences[i];
    ASSERT_EQ(fa.time, fb.time) << "occurrence " << i;
    ASSERT_EQ(fa.subcategory, fb.subcategory) << "occurrence " << i;
    ASSERT_EQ(fa.location, fb.location) << "occurrence " << i;
    ASSERT_EQ(fa.job, fb.job) << "occurrence " << i;
    ASSERT_EQ(fa.is_followup, fb.is_followup) << "occurrence " << i;
    ASSERT_EQ(fa.has_chain, fb.has_chain) << "occurrence " << i;
  }
}

void expect_differential_identity(const SystemProfile& profile, double scale,
                                  std::uint64_t seed_offset) {
  SCOPED_TRACE(profile.name + " scale=" + std::to_string(scale) +
               " seed_offset=" + std::to_string(seed_offset));
  const GeneratedLog oracle =
      LogGenerator(profile).generate(scale, seed_offset);
  StreamConfig cfg;
  cfg.scale = scale;
  cfg.seed_offset = seed_offset;
  StreamingGenerator gen(profile, cfg);
  const Drained streamed = drain(gen);
  ASSERT_GT(oracle.log.size(), 0u);
  expect_logs_identical(oracle.log, streamed.log);
  expect_truth_identical(oracle.truth, streamed.truth);
}

// ---- differential identity ----------------------------------------------

TEST(SimgenStreamTest, DifferentialIdentityAnl) {
  const SystemProfile p = SystemProfile::anl();
  for (std::uint64_t seed_offset : {0ull, 1ull, 2ull}) {
    expect_differential_identity(p, 0.02, seed_offset);
  }
}

TEST(SimgenStreamTest, DifferentialIdentitySdsc) {
  const SystemProfile p = SystemProfile::sdsc();
  for (std::uint64_t seed_offset : {0ull, 1ull, 2ull}) {
    expect_differential_identity(p, 0.03, seed_offset);
  }
}

TEST(SimgenStreamTest, DifferentialIdentityBgqMultistream) {
  // Diurnal modulation + multi-stream profile.
  expect_differential_identity(SystemProfile::bgq_multistream(), 0.005, 0);
}

TEST(SimgenStreamTest, DifferentialIdentityDcProphet) {
  // All three modulators at once (diurnal + maintenance + storms).
  expect_differential_identity(SystemProfile::dc_prophet(), 0.003, 0);
}

// ---- seek reproducibility -----------------------------------------------

TEST(SimgenStreamTest, SeekChunkMatchesSequential) {
  const SystemProfile p = SystemProfile::anl();
  StreamConfig cfg;
  cfg.scale = 0.02;
  StreamingGenerator sequential(p, cfg);
  std::vector<RecordBatch> chunks;
  RecordBatch batch;
  while (sequential.next(batch)) {
    chunks.push_back(std::move(batch));
    batch = RecordBatch{};
  }
  ASSERT_GE(chunks.size(), 3u);

  // A fresh cursor seeked to arbitrary chunks reproduces them without
  // generating the prefix — including backward seeks on one cursor.
  StreamingGenerator seeker(p, cfg);
  for (std::size_t k :
       {chunks.size() - 1, std::size_t{0}, chunks.size() / 2}) {
    seeker.seek_chunk(k);
    ASSERT_EQ(seeker.position(), k);
    RecordBatch replay;
    ASSERT_TRUE(seeker.next(replay));
    EXPECT_EQ(replay.chunk, k);
    EXPECT_EQ(replay.span.begin, chunks[k].span.begin);
    EXPECT_EQ(replay.span.end, chunks[k].span.end);
    expect_logs_identical(chunks[k].log, replay.log);
    expect_truth_identical(chunks[k].truth, replay.truth);
  }

  // Seeking to chunk_count() pins the cursor at end-of-stream.
  seeker.seek_chunk(seeker.chunk_count());
  RecordBatch end;
  EXPECT_FALSE(seeker.next(end));
  EXPECT_TRUE(end.log.empty());
}

// ---- boundary / batch contract ------------------------------------------

TEST(SimgenStreamTest, BatchesAreSortedAndPartitionTheSpan) {
  const SystemProfile p = SystemProfile::sdsc();
  StreamConfig cfg;
  cfg.scale = 0.03;
  StreamingGenerator gen(p, cfg);
  const TimeSpan span = gen.span();
  const std::size_t count = gen.chunk_count();

  RecordBatch batch;
  TimePoint last_time = span.begin;
  std::size_t k = 0;
  std::size_t nonempty = 0;
  while (gen.next(batch)) {
    EXPECT_EQ(batch.chunk, k);
    EXPECT_EQ(batch.span.begin,
              span.begin + static_cast<Duration>(k) * gen.chunk_len());
    EXPECT_TRUE(batch.log.is_time_sorted()) << "chunk " << k;
    if (!batch.log.empty()) {
      ++nonempty;
      // Batch-to-batch ordering: every record at or after the previous
      // batch's last record (the RecordBatchSource contract).
      EXPECT_GE(batch.log.records().front().time, last_time);
      last_time = batch.log.records().back().time;
      // In-span source events only; duplicate re-reports may run past
      // the chunk end only in the final chunk.
      EXPECT_GE(batch.log.records().front().time, batch.span.begin);
      if (k + 1 < count) {
        EXPECT_LT(batch.log.records().back().time, batch.span.end);
      }
    }
    ++k;
  }
  EXPECT_EQ(k, count);
  EXPECT_GT(nonempty, 2u);
}

TEST(SimgenStreamTest, StreamRecordSourceDrainsAndAggregates) {
  const SystemProfile p = SystemProfile::anl();
  StreamConfig cfg;
  cfg.scale = 0.02;
  StreamRecordSource source(p, cfg);
  std::size_t records = 0;
  std::size_t batches = 0;
  RasLog out;
  while (source.next_batch(out)) {
    records += out.size();
    ++batches;
  }
  EXPECT_TRUE(out.empty());  // end-of-stream leaves the log empty
  EXPECT_EQ(batches, source.generator().chunk_count());
  EXPECT_GT(records, 0u);
  const GeneratedLog oracle = LogGenerator(p).generate(0.02, 0);
  EXPECT_EQ(records, oracle.log.size());
  expect_truth_identical(oracle.truth, source.totals());
}

// ---- calibration under modulators ---------------------------------------

TEST(SimgenStreamTest, ExactCategoryTotalsWithModulators) {
  // The Table-4 calibration contract survives chunking and non-uniform
  // seeding rates: per-category fatal totals are hit exactly.
  for (const SystemProfile& p :
       {SystemProfile::anl(), SystemProfile::dc_prophet()}) {
    const double scale = p.name == "ANL" ? 0.02 : 0.003;
    StreamConfig cfg;
    cfg.scale = scale;
    StreamingGenerator gen(p, cfg);
    GroundTruth totals;
    RecordBatch batch;
    while (gen.next(batch)) {
      accumulate_truth(totals, batch.truth);
    }
    for (std::size_t c = 0; c < kMainCategoryCount; ++c) {
      const auto want = static_cast<std::size_t>(std::llround(
          static_cast<double>(p.fatal_per_category[c]) * scale));
      EXPECT_EQ(totals.fatal_per_category[c], want)
          << p.name << " category " << c;
    }
  }
}

TEST(SimgenStreamTest, ModulatorsShapeTheMarginals) {
  // A diurnal + maintenance profile on the ANL base: peak-band volume
  // beats trough-band volume, and maintenance windows are suppressed
  // relative to the same diurnal phase on non-maintenance days.
  SystemProfile p = SystemProfile::anl();
  p.modulators.diurnal_amplitude = 0.6;
  p.modulators.maintenance_period_days = 5.0;
  p.modulators.maintenance_duration = 6 * kHour;
  p.modulators.maintenance_fatal_factor = 0.05;
  p.modulators.maintenance_background_factor = 0.1;

  StreamConfig cfg;
  cfg.scale = 0.04;  // ~18 days: 3 maintenance windows, many day cycles
  StreamingGenerator gen(p, cfg);
  const TimePoint origin = gen.span().begin;

  // Diurnal: w(t) = 1 + 0.6 sin(2*pi*t/day) peaks 6h into each day and
  // troughs at 18h. Count records in 4h bands around each.
  std::size_t peak = 0;
  std::size_t trough = 0;
  // Maintenance: [0, 6h) of days 0/5/10/15 vs the same hours of all
  // other days (same diurnal phase), per-day averaged.
  std::size_t maint = 0;
  std::size_t maint_days = 0;
  std::size_t open = 0;
  std::size_t open_days = 0;
  std::set<std::int64_t> seen_maint_days;
  std::set<std::int64_t> seen_open_days;
  RecordBatch batch;
  while (gen.next(batch)) {
    for (const RasRecord& rec : batch.log.records()) {
      const std::int64_t day = (rec.time - origin) / kDay;
      const Duration tod = (rec.time - origin) % kDay;
      if (tod >= 4 * kHour && tod < 8 * kHour) {
        ++peak;
      } else if (tod >= 16 * kHour && tod < 20 * kHour) {
        ++trough;
      }
      if (tod < 6 * kHour) {
        if (day % 5 == 0) {
          ++maint;
          seen_maint_days.insert(day);
        } else {
          ++open;
          seen_open_days.insert(day);
        }
      }
    }
  }
  maint_days = seen_maint_days.size();
  open_days = seen_open_days.size();
  EXPECT_GT(peak, trough * 3 / 2);
  ASSERT_GE(maint_days, 2u);
  ASSERT_GE(open_days, 5u);
  const double maint_per_day =
      static_cast<double>(maint) / static_cast<double>(maint_days);
  const double open_per_day =
      static_cast<double>(open) / static_cast<double>(open_days);
  EXPECT_LT(maint_per_day, 0.55 * open_per_day);
}

// ---- config validation ---------------------------------------------------

TEST(SimgenStreamTest, StreamConfigValidation) {
  const SystemProfile p = SystemProfile::anl();
  for (double bad_scale : {0.0, -0.5, 1.0001, 2.0}) {
    StreamConfig cfg;
    cfg.scale = bad_scale;
    EXPECT_THROW(StreamingGenerator(p, cfg), InvalidArgument)
        << "scale=" << bad_scale;
  }
  {
    StreamConfig cfg;
    cfg.chunk_len = min_chunk_len(p) - 1;  // below the correctness floor
    EXPECT_THROW(StreamingGenerator(p, cfg), InvalidArgument);
  }
  {
    StreamConfig cfg;
    cfg.scale = 0.01;
    cfg.chunk_len = min_chunk_len(p);  // exactly at the floor: accepted
    StreamingGenerator gen(p, cfg);
    EXPECT_EQ(gen.chunk_len(), min_chunk_len(p));
    EXPECT_THROW(gen.seek_chunk(gen.chunk_count() + 1), InvalidArgument);
  }
  EXPECT_EQ(resolve_chunk_len(p, 0), kDay);
  EXPECT_GE(min_chunk_len(SystemProfile::dc_prophet()), kHour);
}

TEST(SimgenStreamTest, LegacyGenerateScaleValidation) {
  const LogGenerator gen(SystemProfile::anl());
  EXPECT_THROW(gen.generate(0.0), InvalidArgument);
  EXPECT_THROW(gen.generate(-1.0), InvalidArgument);
  EXPECT_THROW(gen.generate(1.5), InvalidArgument);
}

// ---- consumers -----------------------------------------------------------

TEST(SimgenStreamTest, FeedSourceMatchesMaterializedFeed) {
  // OnlineEngine::feed_source over the stream must behave exactly like
  // feeding the materialized oracle record-by-record: same forwarded
  // count, same warnings in the same order.
  constexpr double kScale = 0.01;
  constexpr std::uint64_t kSeed = 3;
  const ThreePhasePredictor tpp;

  OnlineEngine streamed(tpp.make_predictor(Method::kEveryFailure));
  StreamConfig cfg;
  cfg.scale = kScale;
  cfg.seed_offset = kSeed;
  StreamRecordSource source(SystemProfile::anl(), cfg);
  const std::vector<Warning> got = streamed.feed_source(source);

  OnlineEngine oracle_engine(tpp.make_predictor(Method::kEveryFailure));
  const GeneratedLog g =
      LogGenerator(SystemProfile::anl()).generate(kScale, kSeed);
  std::vector<Warning> want;
  for (const RasRecord& rec : g.log.records()) {
    for (Warning& w : oracle_engine.feed(rec, g.log.text_of(rec))) {
      want.push_back(std::move(w));
    }
  }
  for (Warning& w : oracle_engine.flush()) {
    want.push_back(std::move(w));
  }

  EXPECT_EQ(streamed.stats().forwarded, oracle_engine.stats().forwarded);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].issued_at, want[i].issued_at) << "warning " << i;
    EXPECT_EQ(got[i].window_begin, want[i].window_begin) << "warning " << i;
    EXPECT_EQ(got[i].source, want[i].source) << "warning " << i;
  }
  EXPECT_EQ(source.totals().unique_events, g.truth.unique_events);
}

TEST(SimgenStreamTest, FusedIngestFromSourceMatchesThreeStep) {
  // Phase-1 preprocessing over the stream (one batch resident at a
  // time) must produce the same unique-event stream and stats as the
  // batch path on the materialized oracle.
  constexpr double kScale = 0.01;
  constexpr std::uint64_t kSeed = 5;
  StreamConfig cfg;
  cfg.scale = kScale;
  cfg.seed_offset = kSeed;
  StreamRecordSource source(SystemProfile::anl(), cfg);
  PreprocessStats streamed_stats;
  const RasLog streamed = ingest_classified(source, {}, &streamed_stats);

  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(kScale, kSeed);
  RasLog oracle = std::move(g.log);
  const PreprocessStats want_stats = preprocess(oracle);

  EXPECT_EQ(streamed_stats.raw_records, want_stats.raw_records);
  EXPECT_EQ(streamed_stats.temporal.removed, want_stats.temporal.removed);
  EXPECT_EQ(streamed_stats.spatial.removed, want_stats.spatial.removed);
  EXPECT_EQ(streamed_stats.unique_events, want_stats.unique_events);
  EXPECT_EQ(streamed_stats.unique_fatal_events,
            want_stats.unique_fatal_events);
  ASSERT_EQ(streamed.size(), oracle.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    const RasRecord& a = streamed.records()[i];
    const RasRecord& b = oracle.records()[i];
    EXPECT_EQ(a.time, b.time) << "record " << i;
    EXPECT_EQ(a.location, b.location) << "record " << i;
    EXPECT_EQ(a.subcategory, b.subcategory) << "record " << i;
    EXPECT_EQ(streamed.text_of(a), oracle.text_of(b)) << "record " << i;
  }
}

// ---- multi-stream routing ------------------------------------------------

TEST(SimgenStreamTest, StreamOfRoutesStablyAcrossStreams) {
  const SystemProfile p = SystemProfile::bgq_multistream();
  ASSERT_EQ(p.stream_count, 3u);
  StreamConfig cfg;
  cfg.scale = 0.005;
  StreamingGenerator gen(p, cfg);
  std::array<std::size_t, 3> per_stream{};
  RecordBatch batch;
  while (gen.next(batch)) {
    for (const RasRecord& rec : batch.log.records()) {
      const std::uint32_t s = stream_of(rec, p.stream_count);
      ASSERT_LT(s, p.stream_count);
      EXPECT_EQ(s, stream_of(rec, p.stream_count));  // pure + stable
      ++per_stream[s];
    }
  }
  for (std::size_t s = 0; s < per_stream.size(); ++s) {
    EXPECT_GT(per_stream[s], 0u) << "stream " << s << " starved";
  }
  RasRecord rec;
  EXPECT_EQ(stream_of(rec, 1), 0u);
  EXPECT_THROW(stream_of(rec, 0), InvalidArgument);
}

}  // namespace
}  // namespace bglpred
