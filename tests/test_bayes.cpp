// Tests for the naive-Bayes base predictor.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "eval/cross_validation.hpp"
#include "predict/bayes_predictor.hpp"
#include "preprocess/pipeline.hpp"
#include "simgen/generator.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

RasRecord event(TimePoint t, const char* name) {
  const SubcategoryId id = catalog().find(name);
  EXPECT_NE(id, kUnclassified) << name;
  const SubcategoryInfo& info = catalog().info(id);
  RasRecord rec;
  rec.time = t;
  rec.subcategory = id;
  rec.severity = info.severity;
  rec.facility = info.facility;
  rec.location = bgl::Location::make_compute_chip(0, 0, 0, 0);
  return rec;
}

// A training log where nodeMapFileError deterministically precedes
// nodemapCreateFailure, and maskInfo occurs everywhere (uninformative).
RasLog cascade_log(int cascades) {
  RasLog log;
  TimePoint t = 0;
  for (int i = 0; i < cascades; ++i) {
    t += 2 * kHour;
    log.append_with_text(event(t, "maskInfo"), "m1");
    log.append_with_text(event(t + 60, "nodeMapFileError"), "p");
    log.append_with_text(event(t + 5 * kMinute, "nodemapCreateFailure"),
                         "f");
    // Uninformative chatter far from any failure.
    log.append_with_text(event(t + kHour, "maskInfo"), "m2");
  }
  log.sort_by_time();
  return log;
}

PredictionConfig config30() {
  PredictionConfig c;
  c.window = 30 * kMinute;
  return c;
}

TEST(BayesPredictorTest, LearnsDiscriminativeFeature) {
  BayesPredictor bayes(config30());
  bayes.train(cascade_log(60));
  const SubcategoryId precursor = catalog().find("nodeMapFileError");
  const SubcategoryId noise = catalog().find("maskInfo");
  // Bags are evaluated jointly: the realistic pre-failure bag (precursor
  // plus the accompanying chatter) must score far above chatter alone.
  EXPECT_GT(bayes.posterior({precursor, noise}),
            bayes.posterior({noise}));
  EXPECT_GT(bayes.posterior({precursor, noise}), 0.6);
  EXPECT_LT(bayes.posterior({noise}), 0.5);
}

TEST(BayesPredictorTest, PriorReflectsClassBalance) {
  BayesOptions options;
  options.negative_ratio = 4.0;
  BayesPredictor bayes(config30(), options);
  bayes.train(cascade_log(60));
  // 1 positive per ~4 negatives (up to rejection-sampling shortfall).
  EXPECT_GT(bayes.prior(), 0.1);
  EXPECT_LT(bayes.prior(), 0.4);
}

TEST(BayesPredictorTest, WarnsOnPrecursorNotOnNoise) {
  BayesPredictor bayes(config30());
  bayes.train(cascade_log(60));
  bayes.reset();
  EXPECT_FALSE(bayes.observe(event(10000000, "maskInfo")).has_value());
  const auto w = bayes.observe(event(10000100, "nodeMapFileError"));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->source, "bayes");
  EXPECT_TRUE(w->mergeable);
  EXPECT_GE(w->confidence, 0.6);
}

TEST(BayesPredictorTest, FatalEventsAreNotFeatures) {
  BayesPredictor bayes(config30());
  bayes.train(cascade_log(60));
  bayes.reset();
  EXPECT_FALSE(
      bayes.observe(event(10000000, "nodemapCreateFailure")).has_value());
}

TEST(BayesPredictorTest, WindowEvictionLowersPosterior) {
  BayesPredictor bayes(config30());
  bayes.train(cascade_log(60));
  bayes.reset();
  bayes.observe(event(20000000, "maskInfo"));
  ASSERT_TRUE(bayes.observe(event(20000060, "nodeMapFileError")));
  // 20 minutes later (beyond the 15-minute feature window) the precursor
  // is forgotten; noise alone does not warn.
  EXPECT_FALSE(
      bayes.observe(event(20000060 + 20 * kMinute, "maskInfo")));
}

TEST(BayesPredictorTest, UntrainedIsSilent) {
  BayesPredictor bayes(config30());
  EXPECT_DOUBLE_EQ(bayes.posterior({1, 2}), 0.0);
  EXPECT_FALSE(bayes.observe(event(100, "maskInfo")).has_value());
}

TEST(BayesPredictorTest, RejectsBadOptions) {
  BayesOptions bad;
  bad.posterior_threshold = 1.5;
  EXPECT_THROW(BayesPredictor(config30(), bad), InvalidArgument);
  bad.posterior_threshold = 0.5;
  bad.smoothing = 0.0;
  EXPECT_THROW(BayesPredictor(config30(), bad), InvalidArgument);
}

TEST(BayesPredictorTest, ReasonableOnCalibratedLog) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.08);
  PreprocessOptions popt;
  preprocess(g.log, popt);
  const auto& records = g.log.records();
  const std::size_t cut = records.size() * 8 / 10;
  const RasLog train = g.log.subset(
      {records.begin(), records.begin() + static_cast<std::ptrdiff_t>(cut)});
  const RasLog test = g.log.subset(
      {records.begin() + static_cast<std::ptrdiff_t>(cut), records.end()});
  BayesPredictor bayes(config30());
  const FoldResult r = evaluate_split(train, test, bayes);
  // Not asserting paper-level accuracy — just that it finds real signal.
  EXPECT_GT(r.confusion.recall(), 0.1);
  EXPECT_GT(r.confusion.precision(), 0.3);
}

}  // namespace
}  // namespace bglpred
