// Differential property tests for the zero-allocation ingest path
// (raslog/fast_io.hpp, preprocess/fused_ingest.hpp).
//
// The reference reader (read_log) and the batch preprocess pipeline are
// the oracles; the fast reader and the fused streaming pass must be
// observably identical to them — same records, same interned pool, same
// IngestReport (counts, per-class tallies, sample diagnostics with line
// numbers), same strict-mode exceptions — on clean logs AND under every
// text-level corruption class the fault-injection harness produces.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <string_view>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "faultinject/faults.hpp"
#include "preprocess/fused_ingest.hpp"
#include "preprocess/pipeline.hpp"
#include "raslog/fast_io.hpp"
#include "raslog/io.hpp"
#include "simgen/generator.hpp"
#include "taxonomy/classifier.hpp"

namespace bglpred {
namespace {

std::string generated_log_text(double scale = 0.01) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(scale);
  std::stringstream buffer;
  write_log(buffer, g.log);
  return buffer.str();
}

void expect_same_log(const RasLog& ref, const RasLog& fast) {
  ASSERT_EQ(ref.size(), fast.size());
  ASSERT_EQ(ref.pool().size(), fast.pool().size());
  for (std::size_t i = 0; i < ref.pool().size(); ++i) {
    EXPECT_EQ(ref.pool().str(static_cast<StringId>(i)),
              fast.pool().str(static_cast<StringId>(i)))
        << "pool id " << i;
  }
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const RasRecord& a = ref.records()[i];
    const RasRecord& b = fast.records()[i];
    EXPECT_EQ(a.time, b.time) << "record " << i;
    EXPECT_EQ(a.entry_data, b.entry_data) << "record " << i;
    EXPECT_EQ(a.job, b.job) << "record " << i;
    EXPECT_EQ(a.location, b.location) << "record " << i;
    EXPECT_EQ(a.event_type, b.event_type) << "record " << i;
    EXPECT_EQ(a.facility, b.facility) << "record " << i;
    EXPECT_EQ(a.severity, b.severity) << "record " << i;
    EXPECT_EQ(a.subcategory, b.subcategory) << "record " << i;
  }
}

void expect_same_report(const IngestReport& ref, const IngestReport& fast) {
  EXPECT_EQ(ref.records_attempted, fast.records_attempted);
  EXPECT_EQ(ref.records_kept, fast.records_kept);
  EXPECT_EQ(ref.records_dropped, fast.records_dropped);
  EXPECT_EQ(ref.truncated, fast.truncated);
  EXPECT_TRUE(ref.reconciles());
  EXPECT_TRUE(fast.reconciles());
  for (std::size_t c = 0; c < kIngestErrorClassCount; ++c) {
    EXPECT_EQ(ref.by_class[c], fast.by_class[c])
        << "class " << to_string(static_cast<IngestError>(c));
  }
  ASSERT_EQ(ref.samples.size(), fast.samples.size());
  for (std::size_t i = 0; i < ref.samples.size(); ++i) {
    EXPECT_EQ(ref.samples[i], fast.samples[i]) << "sample " << i;
  }
}

/// Runs both readers on `text` with `options` and requires identical
/// logs and reports (neither may throw).
void expect_readers_agree(const std::string& text,
                          const ReadOptions& options) {
  std::stringstream ref_in(text);
  std::stringstream fast_in(text);
  IngestReport ref_report;
  IngestReport fast_report;
  const RasLog ref = read_log(ref_in, options, &ref_report);
  const RasLog fast = read_log_fast(fast_in, options, &fast_report);
  expect_same_log(ref, fast);
  expect_same_report(ref_report, fast_report);
}

/// Returns the ParseError message `fn` throws, or "" if it doesn't.
template <typename Fn>
std::string parse_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const ParseError& e) {
    return e.what();
  }
  return std::string();
}

// ---- clean-input differential ------------------------------------------

TEST(FastIoDifferentialTest, CleanLogMatchesReferenceStrict) {
  expect_readers_agree(generated_log_text(), ReadOptions::strict());
}

TEST(FastIoDifferentialTest, CleanLogMatchesReferenceLenient) {
  expect_readers_agree(generated_log_text(), ReadOptions::lenient());
}

TEST(FastIoDifferentialTest, CommentsAndBlankLinesMatchReference) {
  const std::string text =
      "# header comment\n"
      "\n"
      "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|torus err\n"
      "\n"
      "# trailing comment\n"
      "2005-03-14 06:26:02|MONITOR|INFO|MONITOR|R01-M0-S|0|fan speed\n";
  expect_readers_agree(text, ReadOptions::strict());
}

TEST(FastIoDifferentialTest, EntryDataMayContainPipes) {
  // The entry-data field is the remainder of the line (io.hpp): pipes in
  // it must survive both readers and round-trip through write_log.
  const std::string text =
      "2005-03-14 06:25:01|RAS|FATAL|TORUS|R00-M1-N07-C21|1182|a|b||c\n";
  std::stringstream in(text);
  const RasLog log = read_log_fast(in);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.text_of(log.records()[0]), "a|b||c");
  std::stringstream out;
  write_log(out, log);
  EXPECT_EQ(out.str(), text);
  expect_readers_agree(text, ReadOptions::strict());
}

TEST(FastIoDifferentialTest, NonCanonicalTimestampStillKept) {
  // parse_time's sscanf grammar accepts unpadded components; the fast
  // subset parser does not. The replay path must keep the record with
  // the value the reference parser computes.
  const std::string text =
      "2005-3-14 6:25:1|RAS|INFO|KERNEL|R00-M0|7|boot message\n";
  std::stringstream fast_in(text);
  const RasLog fast = read_log_fast(fast_in);
  ASSERT_EQ(fast.size(), 1u);
  expect_readers_agree(text, ReadOptions::strict());
}

TEST(FastIoDifferentialTest, NoTrailingNewlineMatchesReference) {
  std::string text = generated_log_text();
  ASSERT_FALSE(text.empty());
  text.pop_back();  // drop the final '\n': last line is unterminated
  expect_readers_agree(text, ReadOptions::strict());
}

// ---- fault-injected differential ---------------------------------------

TEST(FastIoDifferentialTest, FieldCorruptionMatchesReference) {
  const std::string clean = generated_log_text();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    TextFaultOptions opts;
    opts.field_corruption_rate = 0.2;
    const std::string dirty = inject_text_faults(clean, opts, rng, nullptr);
    expect_readers_agree(dirty, ReadOptions::lenient());
  }
}

TEST(FastIoDifferentialTest, LineTruncationMatchesReference) {
  const std::string clean = generated_log_text();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    TextFaultOptions opts;
    opts.line_truncation_rate = 0.2;
    const std::string dirty = inject_text_faults(clean, opts, rng, nullptr);
    expect_readers_agree(dirty, ReadOptions::lenient());
  }
}

TEST(FastIoDifferentialTest, DuplicateStormMatchesReference) {
  const std::string clean = generated_log_text();
  Rng rng(7);
  DuplicateStormOptions opts;
  opts.duplicate_rate = 0.05;
  const std::string dirty =
      inject_duplicate_storm(clean, opts, rng, nullptr);
  expect_readers_agree(dirty, ReadOptions::lenient());
}

TEST(FastIoDifferentialTest, CombinedFaultsMatchReference) {
  const std::string clean = generated_log_text();
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    Rng rng(seed);
    TextFaultOptions opts;
    opts.field_corruption_rate = 0.1;
    opts.line_truncation_rate = 0.1;
    std::string dirty = inject_text_faults(clean, opts, rng, nullptr);
    DuplicateStormOptions storm;
    storm.duplicate_rate = 0.02;
    dirty = inject_duplicate_storm(dirty, storm, rng, nullptr);
    expect_readers_agree(dirty, ReadOptions::lenient());
  }
}

TEST(FastIoDifferentialTest, StrictModeErrorsMatchReference) {
  const std::string clean = generated_log_text();
  Rng rng(21);
  TextFaultOptions opts;
  opts.field_corruption_rate = 0.3;
  const std::string dirty = inject_text_faults(clean, opts, rng, nullptr);
  const std::string ref_error = parse_error_of([&] {
    std::stringstream in(dirty);
    read_log(in, ReadOptions::strict());
  });
  const std::string fast_error = parse_error_of([&] {
    std::stringstream in(dirty);
    read_log_fast(in, ReadOptions::strict());
  });
  ASSERT_FALSE(ref_error.empty());
  // Same first offending line, same field context, same message.
  EXPECT_EQ(ref_error, fast_error);
}

TEST(FastIoDifferentialTest, ErrorFractionGuardMatchesReference) {
  const std::string clean = generated_log_text();
  Rng rng(33);
  TextFaultOptions opts;
  opts.field_corruption_rate = 0.5;
  const std::string dirty = inject_text_faults(clean, opts, rng, nullptr);
  const std::string ref_error = parse_error_of([&] {
    std::stringstream in(dirty);
    read_log(in, ReadOptions::lenient(0.05));
  });
  const std::string fast_error = parse_error_of([&] {
    std::stringstream in(dirty);
    read_log_fast(in, ReadOptions::lenient(0.05));
  });
  ASSERT_FALSE(ref_error.empty());
  EXPECT_EQ(ref_error, fast_error);
}

// ---- LineScanner / tokenizer units -------------------------------------

TEST(LineScannerTest, SplitsLinesAcrossChunkBoundaries) {
  const std::string text =
      "first line\nsecond somewhat longer line\nthird\n";
  // A 4-byte chunk forces every line to straddle refills and the buffer
  // to grow past the chunk size.
  std::stringstream in(text);
  LineScanner scanner(in, 4);
  std::string_view line;
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "first line");
  EXPECT_EQ(scanner.line_number(), 1u);
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "second somewhat longer line");
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "third");
  EXPECT_EQ(scanner.line_number(), 3u);
  EXPECT_FALSE(scanner.next(line));
}

TEST(LineScannerTest, UnterminatedTailIsYielded) {
  std::stringstream in("alpha\nbeta");
  LineScanner scanner(in);
  std::string_view line;
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "alpha");
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "beta");
  EXPECT_FALSE(scanner.next(line));
}

TEST(LineScannerTest, TrailingNewlineYieldsNoPhantomLine) {
  std::stringstream in("only\n");
  LineScanner scanner(in);
  std::string_view line;
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "only");
  EXPECT_FALSE(scanner.next(line));
  EXPECT_EQ(scanner.line_number(), 1u);
}

TEST(LineScannerTest, CarriageReturnsPassThrough) {
  // Like std::getline, '\r' is ordinary line content.
  std::stringstream in("a\r\nb\r\n");
  LineScanner scanner(in);
  std::string_view line;
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "a\r");
  ASSERT_TRUE(scanner.next(line));
  EXPECT_EQ(line, "b\r");
  EXPECT_FALSE(scanner.next(line));
}

TEST(LineScannerTest, EmptyInputYieldsNothing) {
  std::stringstream in("");
  LineScanner scanner(in);
  std::string_view line;
  EXPECT_FALSE(scanner.next(line));
  EXPECT_EQ(scanner.line_number(), 0u);
}

TEST(ForEachLineTest, MatchesScannerSemantics) {
  std::vector<std::string> lines;
  for_each_line("a\n\nb\nc",
                [&](std::string_view l) { lines.emplace_back(l); });
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "b");
  EXPECT_EQ(lines[3], "c");
  lines.clear();
  for_each_line("x\n", [&](std::string_view l) { lines.emplace_back(l); });
  ASSERT_EQ(lines.size(), 1u);  // no phantom empty line after '\n'
  EXPECT_EQ(lines[0], "x");
}

TEST(SplitFieldsTest, SevenFieldsWithPipesInEntry) {
  std::array<std::string_view, kRecordFieldCount> fields;
  ASSERT_TRUE(split_fields("a|b|c|d|e|f|g|h|i", fields));
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[5], "f");
  EXPECT_EQ(fields[6], "g|h|i");
  ASSERT_TRUE(split_fields("||||||", fields));
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[6], "");
  EXPECT_FALSE(split_fields("a|b|c|d|e|f", fields));
  EXPECT_FALSE(split_fields("", fields));
}

// ---- non-throwing parser twins -----------------------------------------

TEST(TryParseTest, LocationDifferentialRandomized) {
  // Random strings over the location alphabet: the throwing and
  // non-throwing parsers must agree on accept/reject AND value.
  const std::string alphabet = "RMNCILS0123456789-";
  Rng rng(1234);
  for (int trial = 0; trial < 4000; ++trial) {
    const auto len =
        static_cast<std::size_t>(rng.uniform_int(0, 12));
    std::string code;
    for (std::size_t i = 0; i < len; ++i) {
      code += alphabet[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(alphabet.size()) - 1))];
    }
    bgl::Location fast_loc;
    const bool fast_ok = bgl::try_parse_location(code, fast_loc);
    bool ref_ok = true;
    bgl::Location ref_loc;
    try {
      ref_loc = bgl::parse_location(code);
    } catch (const ParseError&) {
      ref_ok = false;
    }
    ASSERT_EQ(ref_ok, fast_ok) << "code '" << code << "'";
    if (ref_ok) {
      EXPECT_EQ(ref_loc, fast_loc) << "code '" << code << "'";
    }
  }
}

TEST(TryParseTest, LocationRoundTripsAllKinds) {
  const std::array<bgl::Location, 7> locations = {
      bgl::Location::make_rack(12),
      bgl::Location::make_midplane(3, 1),
      bgl::Location::make_node_card(0, 0, 15),
      bgl::Location::make_compute_chip(7, 1, 3, 31),
      bgl::Location::make_io_node(7, 0, 2, 1),
      bgl::Location::make_link_card(2, 1, 3),
      bgl::Location::make_service_card(9, 0),
  };
  for (const bgl::Location& loc : locations) {
    bgl::Location parsed;
    ASSERT_TRUE(bgl::try_parse_location(loc.str(), parsed)) << loc.str();
    EXPECT_EQ(parsed, loc) << loc.str();
    EXPECT_EQ(bgl::parse_location(loc.str()), parsed) << loc.str();
  }
}

TEST(TryParseTest, KeywordParsersMatchThrowingTwins) {
  for (int i = 0; i < kSeverityCount; ++i) {
    const auto s = static_cast<Severity>(i);
    Severity parsed;
    ASSERT_TRUE(try_parse_severity(to_string(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  for (int i = 0; i < kFacilityCount; ++i) {
    const auto f = static_cast<Facility>(i);
    Facility parsed;
    ASSERT_TRUE(try_parse_facility(to_string(f), parsed));
    EXPECT_EQ(parsed, f);
  }
  for (const char* name : {"RAS", "MONITOR", "CONTROL"}) {
    EventType parsed;
    ASSERT_TRUE(try_parse_event_type(name, parsed));
    EXPECT_EQ(to_string(parsed), std::string_view(name));
  }
  Severity sev;
  EXPECT_FALSE(try_parse_severity("", sev));
  EXPECT_FALSE(try_parse_severity("FATA", sev));
  EXPECT_FALSE(try_parse_severity("FATALITY", sev));
  EXPECT_FALSE(try_parse_severity("info", sev));
  Facility fac;
  EXPECT_FALSE(try_parse_facility("CIODX", fac));
  EXPECT_FALSE(try_parse_facility("MEM", fac));
  EventType et;
  EXPECT_FALSE(try_parse_event_type("ras", et));
}

TEST(TryParseTest, TimeAcceptsCanonicalOnly) {
  TimePoint t = 0;
  ASSERT_TRUE(try_parse_time("2005-03-14 06:25:01", t));
  EXPECT_EQ(t, parse_time("2005-03-14 06:25:01"));
  ASSERT_TRUE(try_parse_time("2004-02-29 23:59:59", t));  // leap day
  EXPECT_EQ(t, parse_time("2004-02-29 23:59:59"));
  // Rejections: wrong shape (even when sscanf would accept) and
  // out-of-range components (which the reference also rejects).
  EXPECT_FALSE(try_parse_time("2005-3-14 06:25:01", t));
  EXPECT_FALSE(try_parse_time("2005-03-14T06:25:01", t));
  EXPECT_FALSE(try_parse_time("2005-03-14 06:25:01 ", t));
  EXPECT_FALSE(try_parse_time("2005-13-14 06:25:01", t));
  EXPECT_FALSE(try_parse_time("2005-02-30 06:25:01", t));
  EXPECT_FALSE(try_parse_time("2005-03-14 24:00:00", t));
  EXPECT_FALSE(try_parse_time("", t));
}

TEST(TryParseTest, U32MatchesThrowingTwin) {
  std::uint32_t v = 0;
  ASSERT_TRUE(try_parse_u32("0", v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(try_parse_u32("4294967295", v));
  EXPECT_EQ(v, 4294967295u);
  EXPECT_FALSE(try_parse_u32("", v));
  EXPECT_FALSE(try_parse_u32("-1", v));
  EXPECT_FALSE(try_parse_u32("+1", v));
  EXPECT_FALSE(try_parse_u32("4294967296", v));  // overflow
  EXPECT_FALSE(try_parse_u32("12x", v));
  EXPECT_FALSE(try_parse_u32(" 12", v));
}

// ---- serialization -----------------------------------------------------

TEST(FormatRecordTest, BufferAppendMatchesFormatRecord) {
  std::stringstream in(generated_log_text(0.002));
  const RasLog log = read_log_fast(in);
  ASSERT_GT(log.size(), 0u);
  std::string buf;
  for (const RasRecord& rec : log.records()) {
    buf.clear();
    format_record_to(buf, log, rec);
    EXPECT_EQ(buf, format_record(log, rec));
  }
}

TEST(FormatRecordTest, WriteThenReadIsIdentity) {
  const std::string text = generated_log_text(0.005);
  std::stringstream in(text);
  const RasLog log = read_log(in);
  std::stringstream out;
  write_log(out, log);
  EXPECT_EQ(out.str(), text);
  // And the reparse of the rewrite is the same log again.
  std::stringstream in2(out.str());
  expect_same_log(log, read_log_fast(in2));
}

// ---- fused streaming ingest --------------------------------------------

void expect_same_preprocess_stats(const PreprocessStats& a,
                                  const PreprocessStats& b) {
  EXPECT_EQ(a.raw_records, b.raw_records);
  EXPECT_EQ(a.classification.classified_by_phrase,
            b.classification.classified_by_phrase);
  EXPECT_EQ(a.classification.classified_by_fallback,
            b.classification.classified_by_fallback);
  EXPECT_EQ(a.classification.total, b.classification.total);
  EXPECT_EQ(a.classification.per_main, b.classification.per_main);
  EXPECT_EQ(a.temporal.input_records, b.temporal.input_records);
  EXPECT_EQ(a.temporal.output_records, b.temporal.output_records);
  EXPECT_EQ(a.temporal.removed, b.temporal.removed);
  EXPECT_EQ(a.spatial.input_records, b.spatial.input_records);
  EXPECT_EQ(a.spatial.output_records, b.spatial.output_records);
  EXPECT_EQ(a.spatial.removed, b.spatial.removed);
  EXPECT_EQ(a.unique_events, b.unique_events);
  EXPECT_EQ(a.unique_fatal_events, b.unique_fatal_events);
  EXPECT_EQ(a.fatal_per_main, b.fatal_per_main);
}

void expect_fused_matches_three_step(const std::string& text,
                                     const ReadOptions& read_options) {
  std::stringstream ref_in(text);
  IngestReport ref_report;
  RasLog ref = read_log_fast(ref_in, read_options, &ref_report);
  const PreprocessStats ref_stats = preprocess(ref);

  std::stringstream fused_in(text);
  IngestReport fused_report;
  PreprocessStats fused_stats;
  const RasLog fused = ingest_classified(fused_in, read_options, {},
                                         &fused_stats, &fused_report);
  expect_same_log(ref, fused);
  expect_same_report(ref_report, fused_report);
  expect_same_preprocess_stats(ref_stats, fused_stats);
}

TEST(FusedIngestTest, CleanLogMatchesThreeStepPipeline) {
  expect_fused_matches_three_step(generated_log_text(0.02),
                                  ReadOptions::strict());
}

TEST(FusedIngestTest, FaultInjectedLenientMatchesThreeStepPipeline) {
  const std::string clean = generated_log_text();
  for (std::uint64_t seed = 41; seed <= 43; ++seed) {
    Rng rng(seed);
    TextFaultOptions opts;
    opts.field_corruption_rate = 0.15;
    opts.line_truncation_rate = 0.05;
    std::string dirty = inject_text_faults(clean, opts, rng, nullptr);
    DuplicateStormOptions storm;
    storm.duplicate_rate = 0.05;
    dirty = inject_duplicate_storm(dirty, storm, rng, nullptr);
    expect_fused_matches_three_step(dirty, ReadOptions::lenient());
  }
}

TEST(FusedIngestTest, RejectsUnsortedInput) {
  const std::string text =
      "2005-03-14 06:25:01|RAS|INFO|KERNEL|R00-M0|1|later\n"
      "2005-03-14 06:25:00|RAS|INFO|KERNEL|R00-M0|1|earlier\n";
  std::stringstream in(text);
  EXPECT_THROW(ingest_classified(in, ReadOptions::strict()),
               InvalidArgument);
}

TEST(FusedIngestTest, StrictErrorsMatchFastReader) {
  const std::string text =
      "2005-03-14 06:25:01|RAS|INFO|KERNEL|R00-M0|1|fine\n"
      "2005-03-14 06:25:02|RAS|BOGUS|KERNEL|R00-M0|1|bad severity\n";
  const std::string ref_error = parse_error_of([&] {
    std::stringstream in(text);
    read_log_fast(in, ReadOptions::strict());
  });
  const std::string fused_error = parse_error_of([&] {
    std::stringstream in(text);
    ingest_classified(in, ReadOptions::strict());
  });
  ASSERT_FALSE(ref_error.empty());
  EXPECT_EQ(ref_error, fused_error);
}

// ---- classifier attribution hook ---------------------------------------

TEST(ClassifierAttributionTest, FourArgClassifyReportsPhraseMatch) {
  const EventClassifier classifier;
  bool matched = false;
  // Nonsense text matches no catalog phrase -> fallback attribution.
  const SubcategoryId fb = classifier.classify(
      "zzz no such phrase zzz", Facility::kKernel, Severity::kInfo, &matched);
  EXPECT_FALSE(matched);
  EXPECT_NE(fb, kUnclassified);
  // The 3-arg overload must agree with the 4-arg one.
  EXPECT_EQ(fb, classifier.classify("zzz no such phrase zzz",
                                    Facility::kKernel, Severity::kInfo));
}

}  // namespace
}  // namespace bglpred
