// Tests for the thread pool and parallel_for helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <optional>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace bglpred {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DrainsQueueOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // destructor must run all 50
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      0, hits.size(), [&](std::size_t i) { ++hits[i]; }, pool);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(
      5, 5, [&](std::size_t) { ++calls; }, pool);
  parallel_for(
      7, 3, [&](std::size_t) { ++calls; }, pool);
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   0, 100,
                   [](std::size_t i) {
                     if (i == 57) {
                       throw std::logic_error("bad index");
                     }
                   },
                   pool),
               std::logic_error);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(10, 0);
  // grain > n forces the inline path even with workers available; plain
  // non-atomic increments prove single-threaded execution under TSan.
  parallel_for(
      0, hits.size(), [&](std::size_t i) { ++hits[i]; }, pool,
      /*grain=*/64);
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  parallel_for(
      0, seen.size(),
      [&](std::size_t i) { seen[i] = std::this_thread::get_id(); }, pool);
  for (const auto& id : seen) {
    EXPECT_EQ(id, caller);
  }
}

TEST(ParallelForTest, InlinePathRethrowsImmediately) {
  ThreadPool pool(1);  // single worker -> inline execution
  int reached = 0;
  EXPECT_THROW(parallel_for(
                   0, 10,
                   [&](std::size_t i) {
                     if (i == 3) {
                       throw std::runtime_error("inline boom");
                     }
                     ++reached;
                   },
                   pool),
               std::runtime_error);
  // Inline execution is sequential, so nothing past the throwing index ran.
  EXPECT_EQ(reached, 3);
}

TEST(ParallelForTest, ZeroGrainViolatesContract) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   0, 10, [](std::size_t) {}, pool, /*grain=*/0),
               ContractViolation);
}

TEST(ParallelMapTest, PreservesOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map(
      100, [](std::size_t i) { return i * i; }, pool);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMapTest, OrderingVisibleThroughSentinelResults) {
  // The result slots start in a distinguishable default state
  // (std::nullopt), so a skipped or misrouted index shows up as a hole
  // rather than aliasing a legitimate zero value.
  ThreadPool pool(4);
  // Plain to_string (no char*-plus-string concat) sidesteps gcc-12's
  // -Wrestrict false positive (GCC PR105329).
  const auto out = parallel_map(
      257,
      [](std::size_t i) {
        return std::optional<std::string>(std::to_string(i * 7 + 1));
      },
      pool);
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].has_value()) << "hole at " << i;
    EXPECT_EQ(*out[i], std::to_string(i * 7 + 1));
  }
}

TEST(ParallelForTest, SumMatchesSerial) {
  ThreadPool pool(3);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long long> total{0};
  parallel_for(
      0, data.size(), [&](std::size_t i) { total += data[i]; }, pool);
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace bglpred
