// Frame-level fault-injection property suite for the serve session
// layer (ISSUE 4 satellite; runs under the `faultinject` ctest label and
// the asan-ubsan CI job).
//
// For every seed, a valid request stream is damaged with the faultinject
// byte ops — truncated frame, corrupted length prefix, corrupted CRC
// field, corrupted payload, duplicated frame — and fed to a Session. The
// properties: on_bytes never throws, every damaged request is answered
// with a *typed* kError frame (never silence, never garbage), duplicate
// frames are not re-applied, and the service keeps serving valid
// requests afterwards (same session for recoverable damage, a fresh
// session — a new connection — after a framing desync).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/binary.hpp"
#include "common/rng.hpp"
#include "core/three_phase.hpp"
#include "faultinject/faults.hpp"
#include "serve/outbox.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/shard_manager.hpp"
#include "simgen/generator.hpp"

namespace bglpred::serve {
namespace {

constexpr std::uint64_t kSeeds = 12;

struct Harness {
  explicit Harness(const ThreePhasePredictor& tpp) : registry() {
    ShardOptions options;
    options.shard_count = 2;
    options.queue_capacity = 64;
    options.predictor_factory = [&tpp] {
      return tpp.make_predictor(Method::kEveryFailure);
    };
    manager = std::make_unique<ShardManager>(options, registry);
    session = std::make_unique<Session>(*manager);
  }

  MetricsRegistry registry;
  std::unique_ptr<ShardManager> manager;
  std::unique_ptr<Session> session;
};

std::string submit_frame_bytes(const WireRecord& wr, std::uint32_t seq) {
  Frame frame;
  frame.type = MessageType::kSubmitRecord;
  frame.stream_id = 1;
  frame.seq = seq;
  encode_record(frame.payload, wr.record, wr.entry);
  return encode_frame(frame);
}

std::string poll_frame_bytes(std::uint32_t seq) {
  Frame frame;
  frame.type = MessageType::kPollWarnings;
  frame.stream_id = 1;
  frame.seq = seq;
  return encode_frame(frame);
}

std::vector<Frame> parse_frames(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes);
  std::vector<Frame> frames;
  Frame frame;
  FrameError error;
  while (reader.next(frame, error) == FrameReader::Status::kFrame) {
    frames.push_back(frame);
  }
  return frames;
}

bool has_error_frame(const std::vector<Frame>& frames) {
  for (const Frame& f : frames) {
    if (f.type == MessageType::kError) {
      decode_error_payload(f);  // must itself be well-formed
      return true;
    }
  }
  return false;
}

/// A fresh session on the harness (a reconnecting client) must still be
/// served: a poll gets a kWarnings response.
void expect_still_serving(Harness& h, std::uint32_t seq) {
  Session fresh(*h.manager);
  std::string out;
  EXPECT_EQ(fresh.on_bytes(poll_frame_bytes(seq), out),
            Session::Status::kKeepOpen);
  const auto frames = parse_frames(out);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kWarnings);
}

const std::vector<WireRecord>& shared_records() {
  static const std::vector<WireRecord> records = [] {
    GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
    std::vector<WireRecord> out;
    const std::size_t n = std::min<std::size_t>(32, g.log.records().size());
    for (std::size_t i = 0; i < n; ++i) {
      const RasRecord& rec = g.log.records()[i];
      out.push_back(WireRecord{rec, g.log.text_of(rec)});
    }
    return out;
  }();
  return records;
}

TEST(ServeFaultsTest, TruncatedFrameNeverCrashesAndServiceSurvives) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string whole = submit_frame_bytes(shared_records()[0], 1);
    // Cut strictly short so the frame can never complete.
    InjectionStats stats;
    std::string cut = truncate_blob(whole, rng, 0.0, &stats);
    if (cut.size() == whole.size()) {
      cut = whole.substr(0, whole.size() - 1);
    }
    std::string out;
    const auto status = h.session->on_bytes(cut, out);
    // A truncated frame is just an incomplete read: no response yet, the
    // session waits for the rest.
    EXPECT_EQ(status, Session::Status::kKeepOpen);
    EXPECT_TRUE(parse_frames(out).empty());
    // Feeding the missing tail completes the request normally.
    out.clear();
    h.session->on_bytes(std::string_view(whole).substr(cut.size()), out);
    const auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u) << "seed " << seed;
    EXPECT_EQ(frames[0].type, MessageType::kOk);
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, CorruptedLengthPrefixGetsTypedErrorAndReconnectWorks) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string damaged = corrupt_bytes_in_range(
        submit_frame_bytes(shared_records()[0], 1), kLengthOffset,
        kLengthOffset + 4, rng);
    std::string out;
    Session::Status status = h.session->on_bytes(damaged, out);
    if (status == Session::Status::kKeepOpen && parse_frames(out).empty()) {
      // A *larger* (but in-bounds) length makes the reader wait for the
      // phantom remainder; flush exactly that many zero bytes, which
      // must then fail the CRC and may desync the reader on the padding.
      const auto bad_len =
          wire::decode<std::uint32_t>(damaged.data() + kLengthOffset);
      status = h.session->on_bytes(std::string(bad_len, '\0'), out);
    }
    // Whatever the damage decoded as, the session answered with at least
    // one typed error frame and never threw.
    EXPECT_TRUE(has_error_frame(parse_frames(out))) << "seed " << seed;
    // No record from the damaged frame may have been applied cleanly
    // *and* silently: either it was rejected (no records_in) or the
    // length field happened to survive semantically (same value) — but a
    // changed byte guarantees it did not.
    EXPECT_EQ(h.manager->metrics().records_in.value(), 0u) << "seed " << seed;
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, CorruptedCrcFieldIsRecoverable) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string damaged = corrupt_bytes_in_range(
        submit_frame_bytes(shared_records()[0], 1), kCrcOffset, kCrcOffset + 4,
        rng);
    std::string out;
    // CRC damage is recoverable: the frame extent is trustworthy, so the
    // session skips it, answers kBadCrc, and the SAME connection serves
    // the next request.
    EXPECT_EQ(h.session->on_bytes(damaged, out), Session::Status::kKeepOpen)
        << "seed " << seed;
    auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u) << "seed " << seed;
    ASSERT_EQ(frames[0].type, MessageType::kError);
    EXPECT_EQ(decode_error_payload(frames[0]).code, ErrorCode::kBadCrc);
    EXPECT_EQ(h.manager->metrics().records_in.value(), 0u);

    out.clear();
    h.session->on_bytes(submit_frame_bytes(shared_records()[1], 2), out);
    frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, MessageType::kOk);
    EXPECT_EQ(h.manager->metrics().records_in.value(), 1u);
  }
}

TEST(ServeFaultsTest, CorruptedPayloadGetsTypedErrorNotGarbageRecords) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string whole = submit_frame_bytes(shared_records()[0], 1);
    const std::string damaged = corrupt_bytes_in_range(
        whole, kFrameHeaderSize, whole.size(), rng);
    std::string out;
    EXPECT_EQ(h.session->on_bytes(damaged, out), Session::Status::kKeepOpen);
    const auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u) << "seed " << seed;
    ASSERT_EQ(frames[0].type, MessageType::kError);
    // Any payload byte flip must trip the CRC before decoding starts.
    EXPECT_EQ(decode_error_payload(frames[0]).code, ErrorCode::kBadCrc);
    EXPECT_EQ(h.manager->metrics().records_in.value(), 0u);
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, DuplicatedFrameIsDetectedAndAppliedOnce) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Harness h(tpp);
    InjectionStats stats;
    const std::string doubled =
        duplicate_blob(submit_frame_bytes(shared_records()[0], 1), &stats);
    EXPECT_EQ(stats.duplicated_lines, 1u);
    std::string out;
    EXPECT_EQ(h.session->on_bytes(doubled, out), Session::Status::kKeepOpen);
    const auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 2u) << "seed " << seed;
    EXPECT_EQ(frames[0].type, MessageType::kOk);
    ASSERT_EQ(frames[1].type, MessageType::kError);
    EXPECT_EQ(decode_error_payload(frames[1]).code,
              ErrorCode::kDuplicateFrame);
    // Applied exactly once: the engine saw one record, not two.
    EXPECT_EQ(h.manager->metrics().records_in.value(), 1u);
    EXPECT_EQ(h.manager->metrics().duplicate_frames.value(), 1u);
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, RandomByteSoupNeverEscapesTheSession) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    std::string soup(512, '\0');
    for (char& c : soup) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    std::string out;
    // The only property: no throw, and any response bytes are themselves
    // well-formed frames.
    const auto status = h.session->on_bytes(soup, out);
    (void)status;
    for (const Frame& f : parse_frames(out)) {
      EXPECT_EQ(f.type, MessageType::kError);
    }
    expect_still_serving(h, 1);
  }
}

// ---- Outbox edge cases (the flush path's data structure) -----------------

/// Concatenates everything fill_iovecs exposes (with a max high enough
/// to see every chunk) — the bytes the next flush would hand the kernel.
std::string gather_all(const Outbox& box) {
  std::vector<iovec> iov(4096);
  const std::size_t count = box.fill_iovecs(iov.data(), iov.size());
  std::string out;
  for (std::size_t i = 0; i < count; ++i) {
    out.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
  }
  return out;
}

// The event loop fills at most kMaxIov entries per flush: with more
// chunks queued than the limit, fill_iovecs must stop exactly at the
// limit, expose the FRONT of the queue, and honor a partial-write
// offset in the first entry.
TEST(OutboxEdgeTest, FillIovecsHonorsEntryLimitAcrossChunkBoundaries) {
  constexpr std::size_t kMaxIov = 64;
  Outbox box;
  for (std::size_t i = 0; i < kMaxIov + 6; ++i) {
    box.push(std::string(1, static_cast<char>('a' + i % 26)));
  }
  std::vector<iovec> iov(kMaxIov);
  ASSERT_EQ(box.fill_iovecs(iov.data(), kMaxIov), kMaxIov);
  std::size_t exposed = 0;
  for (std::size_t i = 0; i < kMaxIov; ++i) {
    exposed += iov[i].iov_len;
  }
  EXPECT_EQ(exposed, kMaxIov);              // one byte per chunk
  EXPECT_EQ(box.size(), kMaxIov + 6);       // limit hides, not drops

  // A partial write inside the first chunk: the next fill resumes at
  // the offset, and the entry count shrinks only by fully-popped chunks.
  box.consume(kMaxIov);  // pop exactly the exposed chunks
  EXPECT_EQ(box.fill_iovecs(iov.data(), kMaxIov), 6u);
  EXPECT_EQ(box.size(), 6u);
}

// consume() landing exactly on a chunk seam: the finished chunk pops,
// the offset resets, and the next fill starts cleanly at the seam.
TEST(OutboxEdgeTest, ConsumeLandingOnChunkSeamResetsOffset) {
  Outbox box;
  box.push(std::string(10, 'x'));
  box.push(std::string(20, 'y'));
  box.push(std::string(30, 'z'));

  box.consume(10);  // exactly the first chunk
  EXPECT_EQ(box.size(), 50u);
  EXPECT_EQ(gather_all(box), std::string(20, 'y') + std::string(30, 'z'));

  box.consume(25);  // finishes 'y' ON the seam, 5 bytes into 'z'
  EXPECT_EQ(box.size(), 25u);
  EXPECT_EQ(gather_all(box), std::string(25, 'z'));

  box.consume(25);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.size(), 0u);
}

// Byte-accounting property: across a random interleaving of push(),
// writable_tail()+sync_tail() appends, and partial consume()s, the
// outbox's exposed bytes must equal a flat reference string — same
// content, same order, size() always agreeing.
TEST(OutboxEdgeTest, RandomOpsPreserveByteAccounting) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed);
    Outbox box;
    std::string model;
    std::uint64_t next_byte = 0;
    const auto fresh_blob = [&](std::size_t n) {
      std::string blob(n, '\0');
      for (char& c : blob) {
        c = static_cast<char>(next_byte++ % 251);  // non-repeating-ish
      }
      return blob;
    };
    for (int op = 0; op < 200; ++op) {
      switch (rng.uniform_int(0, 2)) {
        case 0: {
          const std::string blob =
              fresh_blob(static_cast<std::size_t>(rng.uniform_int(0, 700)));
          model += blob;
          box.push(blob);
          break;
        }
        case 1: {
          const std::string blob =
              fresh_blob(static_cast<std::size_t>(rng.uniform_int(1, 300)));
          model += blob;
          box.writable_tail() += blob;
          box.sync_tail();
          break;
        }
        default: {
          if (box.size() > 0) {
            const auto n = static_cast<std::size_t>(rng.uniform_int(
                1, static_cast<int>(std::min<std::size_t>(box.size(), 900))));
            box.consume(n);
            model.erase(0, n);
          }
          break;
        }
      }
      ASSERT_EQ(box.size(), model.size()) << "seed " << seed << " op " << op;
      ASSERT_EQ(box.empty(), model.empty());
    }
    EXPECT_EQ(gather_all(box), model) << "seed " << seed;
    box.consume(box.size());
    EXPECT_TRUE(box.empty());
  }
}

}  // namespace
}  // namespace bglpred::serve
