// Frame-level fault-injection property suite for the serve session
// layer (ISSUE 4 satellite; runs under the `faultinject` ctest label and
// the asan-ubsan CI job).
//
// For every seed, a valid request stream is damaged with the faultinject
// byte ops — truncated frame, corrupted length prefix, corrupted CRC
// field, corrupted payload, duplicated frame — and fed to a Session. The
// properties: on_bytes never throws, every damaged request is answered
// with a *typed* kError frame (never silence, never garbage), duplicate
// frames are not re-applied, and the service keeps serving valid
// requests afterwards (same session for recoverable damage, a fresh
// session — a new connection — after a framing desync).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/binary.hpp"
#include "common/rng.hpp"
#include "core/three_phase.hpp"
#include "faultinject/faults.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"
#include "serve/shard_manager.hpp"
#include "simgen/generator.hpp"

namespace bglpred::serve {
namespace {

constexpr std::uint64_t kSeeds = 12;

struct Harness {
  explicit Harness(const ThreePhasePredictor& tpp) : registry() {
    ShardOptions options;
    options.shard_count = 2;
    options.queue_capacity = 64;
    options.predictor_factory = [&tpp] {
      return tpp.make_predictor(Method::kEveryFailure);
    };
    manager = std::make_unique<ShardManager>(options, registry);
    session = std::make_unique<Session>(*manager);
  }

  MetricsRegistry registry;
  std::unique_ptr<ShardManager> manager;
  std::unique_ptr<Session> session;
};

std::string submit_frame_bytes(const WireRecord& wr, std::uint32_t seq) {
  Frame frame;
  frame.type = MessageType::kSubmitRecord;
  frame.stream_id = 1;
  frame.seq = seq;
  encode_record(frame.payload, wr.record, wr.entry);
  return encode_frame(frame);
}

std::string poll_frame_bytes(std::uint32_t seq) {
  Frame frame;
  frame.type = MessageType::kPollWarnings;
  frame.stream_id = 1;
  frame.seq = seq;
  return encode_frame(frame);
}

std::vector<Frame> parse_frames(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes);
  std::vector<Frame> frames;
  Frame frame;
  FrameError error;
  while (reader.next(frame, error) == FrameReader::Status::kFrame) {
    frames.push_back(frame);
  }
  return frames;
}

bool has_error_frame(const std::vector<Frame>& frames) {
  for (const Frame& f : frames) {
    if (f.type == MessageType::kError) {
      decode_error_payload(f);  // must itself be well-formed
      return true;
    }
  }
  return false;
}

/// A fresh session on the harness (a reconnecting client) must still be
/// served: a poll gets a kWarnings response.
void expect_still_serving(Harness& h, std::uint32_t seq) {
  Session fresh(*h.manager);
  std::string out;
  EXPECT_EQ(fresh.on_bytes(poll_frame_bytes(seq), out),
            Session::Status::kKeepOpen);
  const auto frames = parse_frames(out);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, MessageType::kWarnings);
}

const std::vector<WireRecord>& shared_records() {
  static const std::vector<WireRecord> records = [] {
    GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
    std::vector<WireRecord> out;
    const std::size_t n = std::min<std::size_t>(32, g.log.records().size());
    for (std::size_t i = 0; i < n; ++i) {
      const RasRecord& rec = g.log.records()[i];
      out.push_back(WireRecord{rec, g.log.text_of(rec)});
    }
    return out;
  }();
  return records;
}

TEST(ServeFaultsTest, TruncatedFrameNeverCrashesAndServiceSurvives) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string whole = submit_frame_bytes(shared_records()[0], 1);
    // Cut strictly short so the frame can never complete.
    InjectionStats stats;
    std::string cut = truncate_blob(whole, rng, 0.0, &stats);
    if (cut.size() == whole.size()) {
      cut = whole.substr(0, whole.size() - 1);
    }
    std::string out;
    const auto status = h.session->on_bytes(cut, out);
    // A truncated frame is just an incomplete read: no response yet, the
    // session waits for the rest.
    EXPECT_EQ(status, Session::Status::kKeepOpen);
    EXPECT_TRUE(parse_frames(out).empty());
    // Feeding the missing tail completes the request normally.
    out.clear();
    h.session->on_bytes(std::string_view(whole).substr(cut.size()), out);
    const auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u) << "seed " << seed;
    EXPECT_EQ(frames[0].type, MessageType::kOk);
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, CorruptedLengthPrefixGetsTypedErrorAndReconnectWorks) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string damaged = corrupt_bytes_in_range(
        submit_frame_bytes(shared_records()[0], 1), kLengthOffset,
        kLengthOffset + 4, rng);
    std::string out;
    Session::Status status = h.session->on_bytes(damaged, out);
    if (status == Session::Status::kKeepOpen && parse_frames(out).empty()) {
      // A *larger* (but in-bounds) length makes the reader wait for the
      // phantom remainder; flush exactly that many zero bytes, which
      // must then fail the CRC and may desync the reader on the padding.
      const auto bad_len =
          wire::decode<std::uint32_t>(damaged.data() + kLengthOffset);
      status = h.session->on_bytes(std::string(bad_len, '\0'), out);
    }
    // Whatever the damage decoded as, the session answered with at least
    // one typed error frame and never threw.
    EXPECT_TRUE(has_error_frame(parse_frames(out))) << "seed " << seed;
    // No record from the damaged frame may have been applied cleanly
    // *and* silently: either it was rejected (no records_in) or the
    // length field happened to survive semantically (same value) — but a
    // changed byte guarantees it did not.
    EXPECT_EQ(h.manager->metrics().records_in.value(), 0u) << "seed " << seed;
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, CorruptedCrcFieldIsRecoverable) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string damaged = corrupt_bytes_in_range(
        submit_frame_bytes(shared_records()[0], 1), kCrcOffset, kCrcOffset + 4,
        rng);
    std::string out;
    // CRC damage is recoverable: the frame extent is trustworthy, so the
    // session skips it, answers kBadCrc, and the SAME connection serves
    // the next request.
    EXPECT_EQ(h.session->on_bytes(damaged, out), Session::Status::kKeepOpen)
        << "seed " << seed;
    auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u) << "seed " << seed;
    ASSERT_EQ(frames[0].type, MessageType::kError);
    EXPECT_EQ(decode_error_payload(frames[0]).code, ErrorCode::kBadCrc);
    EXPECT_EQ(h.manager->metrics().records_in.value(), 0u);

    out.clear();
    h.session->on_bytes(submit_frame_bytes(shared_records()[1], 2), out);
    frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, MessageType::kOk);
    EXPECT_EQ(h.manager->metrics().records_in.value(), 1u);
  }
}

TEST(ServeFaultsTest, CorruptedPayloadGetsTypedErrorNotGarbageRecords) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    const std::string whole = submit_frame_bytes(shared_records()[0], 1);
    const std::string damaged = corrupt_bytes_in_range(
        whole, kFrameHeaderSize, whole.size(), rng);
    std::string out;
    EXPECT_EQ(h.session->on_bytes(damaged, out), Session::Status::kKeepOpen);
    const auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 1u) << "seed " << seed;
    ASSERT_EQ(frames[0].type, MessageType::kError);
    // Any payload byte flip must trip the CRC before decoding starts.
    EXPECT_EQ(decode_error_payload(frames[0]).code, ErrorCode::kBadCrc);
    EXPECT_EQ(h.manager->metrics().records_in.value(), 0u);
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, DuplicatedFrameIsDetectedAndAppliedOnce) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Harness h(tpp);
    InjectionStats stats;
    const std::string doubled =
        duplicate_blob(submit_frame_bytes(shared_records()[0], 1), &stats);
    EXPECT_EQ(stats.duplicated_lines, 1u);
    std::string out;
    EXPECT_EQ(h.session->on_bytes(doubled, out), Session::Status::kKeepOpen);
    const auto frames = parse_frames(out);
    ASSERT_EQ(frames.size(), 2u) << "seed " << seed;
    EXPECT_EQ(frames[0].type, MessageType::kOk);
    ASSERT_EQ(frames[1].type, MessageType::kError);
    EXPECT_EQ(decode_error_payload(frames[1]).code,
              ErrorCode::kDuplicateFrame);
    // Applied exactly once: the engine saw one record, not two.
    EXPECT_EQ(h.manager->metrics().records_in.value(), 1u);
    EXPECT_EQ(h.manager->metrics().duplicate_frames.value(), 1u);
    expect_still_serving(h, 2);
  }
}

TEST(ServeFaultsTest, RandomByteSoupNeverEscapesTheSession) {
  const ThreePhasePredictor tpp;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Rng rng(seed);
    Harness h(tpp);
    std::string soup(512, '\0');
    for (char& c : soup) {
      c = static_cast<char>(rng.uniform_int(0, 255));
    }
    std::string out;
    // The only property: no throw, and any response bytes are themselves
    // well-formed frames.
    const auto status = h.session->on_bytes(soup, out);
    (void)status;
    for (const Frame& f : parse_frames(out)) {
      EXPECT_EQ(f.type, MessageType::kError);
    }
    expect_still_serving(h, 1);
  }
}

}  // namespace
}  // namespace bglpred::serve
