// Tests for the job-impact filter and spatial-locality analysis.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "eval/job_impact.hpp"
#include "preprocess/pipeline.hpp"
#include "simgen/generator.hpp"
#include "stats/correlation.hpp"
#include "taxonomy/catalog.hpp"

namespace bglpred {
namespace {

RasRecord event(TimePoint t, const char* name, bgl::JobId job,
                bgl::Location loc =
                    bgl::Location::make_compute_chip(0, 0, 0, 0)) {
  const SubcategoryId id = catalog().find(name);
  EXPECT_NE(id, kUnclassified) << name;
  const SubcategoryInfo& info = catalog().info(id);
  RasRecord rec;
  rec.time = t;
  rec.subcategory = id;
  rec.severity = info.severity;
  rec.facility = info.facility;
  rec.location = loc;
  rec.job = job;
  return rec;
}

TEST(JobImpactTest, ClassifiesByJobPresence) {
  EXPECT_TRUE(is_job_impacting(event(1, "torusFailure", 42)));
  EXPECT_FALSE(is_job_impacting(event(1, "torusFailure", bgl::kNoJob)));
  // Non-fatal events never count, job or not.
  EXPECT_FALSE(is_job_impacting(event(1, "maskInfo", 42)));
}

TEST(JobImpactTest, StatsAndTimes) {
  RasLog log;
  log.append_with_text(event(100, "torusFailure", 5), "a");
  log.append_with_text(event(200, "maskInfo", 5), "b");
  log.append_with_text(event(300, "cacheFailure", bgl::kNoJob), "c");
  log.append_with_text(event(400, "socketReadFailure", 6), "d");
  const JobImpactStats stats = job_impact_stats(log);
  EXPECT_EQ(stats.fatal_events, 3u);
  EXPECT_EQ(stats.job_impacting, 2u);
  EXPECT_NEAR(stats.impacting_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(job_impacting_fatal_times(log),
            (std::vector<TimePoint>{100, 400}));
}

TEST(JobImpactTest, GeneratedLogHasBothKinds) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.05);
  preprocess(g.log);
  const JobImpactStats stats = job_impact_stats(g.log);
  // Jobs don't run wall-to-wall, so both classes must appear.
  EXPECT_GT(stats.job_impacting, 0u);
  EXPECT_LT(stats.job_impacting, stats.fatal_events);
  EXPECT_GT(stats.impacting_fraction(), 0.3);
}

TEST(SpatialLocalityTest, DetectsColocatedCascades) {
  RasLog log;
  const auto mid0 = bgl::Location::make_compute_chip(0, 0, 1, 1);
  const auto mid0b = bgl::Location::make_compute_chip(0, 0, 7, 3);
  const auto mid1 = bgl::Location::make_compute_chip(0, 1, 2, 2);
  // Three close pairs: two co-located on midplane 0, one crossing.
  log.append_with_text(event(1000, "torusFailure", 1, mid0), "a");
  log.append_with_text(event(1100, "torusFailure", 1, mid0b), "b");
  log.append_with_text(event(1200, "cacheFailure", 1, mid1), "c");
  log.append_with_text(event(1300, "rtsFailure", 1, mid1), "d");
  const SpatialLocality locality = spatial_locality(log, kHour);
  EXPECT_EQ(locality.close_pairs, 3u);
  EXPECT_EQ(locality.same_midplane, 2u);
  EXPECT_NEAR(locality.same_midplane_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(locality.uniform_expectation, 0.5, 1e-12);  // 2 midplanes
  EXPECT_GT(locality.locality_lift(), 1.0);
}

TEST(SpatialLocalityTest, FarApartPairsIgnored) {
  RasLog log;
  log.append_with_text(event(0, "torusFailure", 1), "a");
  log.append_with_text(event(10 * kHour, "torusFailure", 1), "b");
  const SpatialLocality locality = spatial_locality(log, kHour);
  EXPECT_EQ(locality.close_pairs, 0u);
  EXPECT_DOUBLE_EQ(locality.locality_lift(), 0.0);
}

TEST(SpatialLocalityTest, RejectsBadWindow) {
  RasLog log;
  EXPECT_THROW(spatial_locality(log, 0), InvalidArgument);
}

}  // namespace
}  // namespace bglpred
