// Tests for the sharded prediction service: shard routing, backpressure,
// the session layer, and the end-to-end served path — including the
// central equivalence claim that a served stream's warnings are
// byte-identical to a single in-process OnlineEngine per stream, across
// a mid-stream CHECKPOINT/RESTORE of the whole shard set.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/binary.hpp"
#include "core/three_phase.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/shard_manager.hpp"
#include "simgen/generator.hpp"

namespace bglpred::serve {
namespace {

/// Factory for the streams' engines: every-failure is deterministic,
/// needs no training, and is checkpointable — ideal for equivalence.
std::function<PredictorPtr()> every_failure_factory(
    const ThreePhasePredictor& tpp) {
  return [&tpp] { return tpp.make_predictor(Method::kEveryFailure); };
}

ShardOptions small_shard_options(const ThreePhasePredictor& tpp) {
  ShardOptions options;
  options.shard_count = 3;
  options.queue_capacity = 256;
  options.predictor_factory = every_failure_factory(tpp);
  return options;
}

/// Splits a generated log's raw records into `streams` interleaved
/// WireRecord sequences (entry text attached), mimicking independent
/// collectors feeding one service.
std::vector<std::vector<WireRecord>> split_streams(const GeneratedLog& g,
                                                   std::size_t streams,
                                                   std::size_t max_records) {
  std::vector<std::vector<WireRecord>> out(streams);
  const auto& records = g.log.records();
  const std::size_t n = std::min(max_records, records.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i % streams].push_back(
        WireRecord{records[i], g.log.text_of(records[i])});
  }
  return out;
}

/// Decodes every response frame out of a session output buffer.
std::vector<Frame> parse_frames(const std::string& bytes) {
  FrameReader reader;
  reader.feed(bytes);
  std::vector<Frame> frames;
  Frame frame;
  FrameError error;
  while (reader.next(frame, error) == FrameReader::Status::kFrame) {
    frames.push_back(frame);
  }
  return frames;
}

std::uint64_t accepted_count(const Frame& reply) {
  BytesReader in(reply.payload);
  return in.read<std::uint64_t>("accepted count");
}

TEST(ShardRoutingTest, DeterministicAndSpread) {
  std::set<std::size_t> hit;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const std::size_t shard = ShardManager::shard_of(id, 4);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, ShardManager::shard_of(id, 4));  // stable
    hit.insert(shard);
  }
  // splitmix64 must spread even sequential ids across all shards.
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardManagerTest, BackpressureBoundsTheQueue) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardOptions options = small_shard_options(tpp);
  options.shard_count = 1;
  options.queue_capacity = 2;
  ShardManager manager(options, registry);
  const RasRecord rec;
  EXPECT_EQ(manager.submit(1, rec, "a"), ShardManager::Submit::kAccepted);
  EXPECT_EQ(manager.submit(1, rec, "b"), ShardManager::Submit::kAccepted);
  EXPECT_EQ(manager.submit(1, rec, "c"), ShardManager::Submit::kBusy);
  EXPECT_EQ(manager.metrics().records_rejected.value(), 1u);
  manager.drain();
  EXPECT_EQ(manager.submit(1, rec, "d"), ShardManager::Submit::kAccepted);
}

TEST(SessionTest, BatchRejectedBusyCarriesAcceptedCount) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardOptions options = small_shard_options(tpp);
  options.shard_count = 1;
  options.queue_capacity = 2;
  ShardManager manager(options, registry);
  Session session(manager);

  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto streams = split_streams(g, 1, 5);
  ASSERT_EQ(streams[0].size(), 5u);
  Frame request;
  request.type = MessageType::kSubmitBatch;
  request.stream_id = 9;
  request.seq = 1;
  wire::append<std::uint32_t>(request.payload, 5);
  for (const WireRecord& wr : streams[0]) {
    encode_record(request.payload, wr.record, wr.entry);
  }
  std::string out;
  ASSERT_EQ(session.on_bytes(encode_frame(request), out),
            Session::Status::kKeepOpen);
  const auto replies = parse_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MessageType::kRejectedBusy);
  EXPECT_EQ(accepted_count(replies[0]), 2u);
  EXPECT_EQ(manager.metrics().records_in.value(), 2u);
  EXPECT_EQ(manager.metrics().records_rejected.value(), 1u);
}

TEST(SessionTest, DuplicateFrameIsNotReapplied) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardManager manager(small_shard_options(tpp), registry);
  Session session(manager);

  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto streams = split_streams(g, 1, 1);
  Frame request;
  request.type = MessageType::kSubmitRecord;
  request.stream_id = 1;
  request.seq = 5;
  encode_record(request.payload, streams[0][0].record, streams[0][0].entry);
  const std::string bytes = encode_frame(request);

  std::string out;
  session.on_bytes(bytes, out);
  ASSERT_EQ(parse_frames(out).front().type, MessageType::kOk);

  // The exact same frame again: rejected by sequence, engine untouched.
  out.clear();
  session.on_bytes(bytes, out);
  const auto replies = parse_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, MessageType::kError);
  EXPECT_EQ(decode_error_payload(replies[0]).code,
            ErrorCode::kDuplicateFrame);
  EXPECT_EQ(manager.metrics().records_in.value(), 1u);
  EXPECT_EQ(manager.metrics().duplicate_frames.value(), 1u);
}

TEST(SessionTest, FullyRejectedSubmitCanBeRetransmittedVerbatim) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardOptions options = small_shard_options(tpp);
  options.shard_count = 1;
  options.queue_capacity = 2;
  ShardManager manager(options, registry);
  Session session(manager);

  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto streams = split_streams(g, 1, 1);
  // Fill the (single) shard's queue so the session's submit is rejected
  // with nothing applied.
  const RasRecord filler;
  ASSERT_EQ(manager.submit(7, filler, "a"), ShardManager::Submit::kAccepted);
  ASSERT_EQ(manager.submit(7, filler, "b"), ShardManager::Submit::kAccepted);

  Frame request;
  request.type = MessageType::kSubmitRecord;
  request.stream_id = 1;
  request.seq = 3;
  encode_record(request.payload, streams[0][0].record, streams[0][0].entry);
  const std::string bytes = encode_frame(request);

  std::string out;
  session.on_bytes(bytes, out);
  auto replies = parse_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MessageType::kRejectedBusy);
  EXPECT_EQ(accepted_count(replies[0]), 0u);

  // Backpressure clears; the verbatim retransmit (same seq) must be
  // applied, not rejected as a duplicate.
  manager.drain();
  out.clear();
  session.on_bytes(bytes, out);
  replies = parse_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MessageType::kOk);
  EXPECT_EQ(accepted_count(replies[0]), 1u);
  EXPECT_EQ(manager.metrics().duplicate_frames.value(), 0u);

  // But a frame that WAS applied still cannot be replayed.
  out.clear();
  session.on_bytes(bytes, out);
  replies = parse_frames(out);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0].type, MessageType::kError);
  EXPECT_EQ(decode_error_payload(replies[0]).code,
            ErrorCode::kDuplicateFrame);
}

TEST(ShardManagerTest, RestoreDoesNotDoubleEngineCounters) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardOptions options = small_shard_options(tpp);
  options.shard_count = 1;
  ShardManager manager(options, registry);

  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto streams = split_streams(g, 2, 40);
  for (std::size_t s = 0; s < streams.size(); ++s) {
    for (const WireRecord& wr : streams[s]) {
      ASSERT_EQ(manager.submit(s, wr.record, wr.entry),
                ShardManager::Submit::kAccepted);
    }
  }
  manager.drain();
  const Counter& raw = registry.counter("shard0.engine.raw_records");
  const std::uint64_t before = raw.value();
  ASSERT_GT(before, 0u);

  // Restoring a server's own mid-stream checkpoint replaces the engines
  // with copies holding identical lifetime stats; the registry total
  // must stay equal to those stats, not double.
  std::stringstream blob;
  manager.save(blob);
  manager.restore(blob);
  EXPECT_EQ(raw.value(), before);
}

TEST(ShardManagerTest, DumpJsonListsEveryRegisteredMetric) {
  // Inventory check paired with the drift-metric-unasserted rule in
  // tools/repo_analyze.py: every metric the serving plane registers must
  // surface in dump_json under its documented name. A renamed or dropped
  // registration fails here; a new registration missing from this list
  // fails the analyzer.
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardOptions options = small_shard_options(tpp);
  options.shard_count = 1;
  ShardManager manager(options, registry);

  // One submitted record forces a stream — and its engine's counters —
  // into existence under shard0.engine.*.
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto streams = split_streams(g, 1, 1);
  ASSERT_FALSE(streams[0].empty());
  ASSERT_EQ(manager.submit(0, streams[0][0].record, streams[0][0].entry),
            ShardManager::Submit::kAccepted);
  manager.drain();

  const std::string json = registry.dump_json();
  for (const char* name : {
           // session/server plane (ServeMetrics)
           "serve.frames_in", "serve.frames_out", "serve.decode_errors",
           "serve.duplicate_frames", "serve.records_in", "serve.batches_in",
           "serve.records_rejected", "serve.warnings_out",
           "serve.checkpoints", "serve.restores", "serve.connections",
           "serve.wakeups", "serve.submit_micros",
           "serve.warning_age_micros",
           // overload protection & lifecycle (DESIGN §8.5)
           "serve.accepts_shed", "serve.slow_readers_evicted",
           "serve.idle_timeouts", "serve.write_stall_timeouts",
           "serve.budget_rejected", "serve.drain_forced_closes",
           "serve.fd_limit", "serve.outbox_bytes",
           "serve.stats_wall_micros",
           // per-shard gauges
           "shard0.queue_depth", "shard0.streams",
           // per-stream engine counters (OnlineEngine::kCounterSlots)
           "shard0.engine.raw_records", "shard0.engine.deduplicated",
           "shard0.engine.forwarded", "shard0.engine.warnings",
           "shard0.engine.degraded", "shard0.engine.reordered",
           "shard0.engine.clamped"}) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << "metric missing from dump_json: " << name;
  }
}

/// Server tests that exercise the event loop run against both readiness
/// backends: edge-triggered epoll (production) and the poll() oracle.
class ServerBackendTest : public ::testing::TestWithParam<PollerBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, ServerBackendTest,
    ::testing::Values(PollerBackend::kEpoll, PollerBackend::kPoll),
    [](const ::testing::TestParamInfo<PollerBackend>& info) {
      return std::string(to_string(info.param));
    });

TEST_P(ServerBackendTest, AbortiveClientDisconnectDoesNotKillServer) {
  const ThreePhasePredictor tpp;
  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();

  {
    // Send bytes, then RST the connection (SO_LINGER 0 close) so the
    // server's next recv on it fails with ECONNRESET.
    OwnedFd rude = connect_loopback(server.port());
    send_all(rude, "not a frame");
    const linger abort_now{1, 0};
    ::setsockopt(rude.get(), SOL_SOCKET, SO_LINGER, &abort_now,
                 sizeof(abort_now));
  }

  // One misbehaving client must cost only its own connection: a second
  // client still gets a full admin roundtrip.
  Client client = Client::connect(server.port());
  EXPECT_NE(client.stats_json().find("\"serve.frames_in\":"),
            std::string::npos);
  client.shutdown_server();
  server.stop();
}

TEST_P(ServerBackendTest, StopResetsConnectionsGauge) {
  const ThreePhasePredictor tpp;
  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  // A completed roundtrip proves the server accepted the connection.
  client.stats_json();
  EXPECT_EQ(server.metrics().gauge("serve.connections").value(), 1);
  // Stop with the connection still open: the teardown path must release
  // the gauge, or a restarted server (same registry) reports a stale
  // count forever.
  server.stop();
  EXPECT_EQ(server.metrics().gauge("serve.connections").value(), 0);
}

TEST(OnlineEngineMetricsTest, AttachedCountersMirrorStats) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto& records = g.log.records();
  const std::size_t half = std::min<std::size_t>(50, records.size() / 2);
  for (std::size_t i = 0; i < half; ++i) {
    engine.feed(records[i], g.log.text_of(records[i]));
  }
  // Attaching mid-stream adds the current totals, so the counters report
  // lifetime counts from here on.
  engine.attach_metrics(registry, "engine.");
  for (std::size_t i = half; i < 2 * half; ++i) {
    engine.feed(records[i], g.log.text_of(records[i]));
  }
  EXPECT_EQ(registry.counter("engine.raw_records").value(),
            engine.stats().raw_records);
  EXPECT_EQ(registry.counter("engine.deduplicated").value(),
            engine.stats().deduplicated);
  EXPECT_EQ(registry.counter("engine.forwarded").value(),
            engine.stats().forwarded);
  EXPECT_EQ(registry.counter("engine.warnings").value(),
            engine.stats().warnings);
  EXPECT_EQ(registry.counter("engine.degraded").value(),
            engine.stats().degraded);
  EXPECT_EQ(registry.counter("engine.reordered").value(),
            engine.stats().reordered);
  EXPECT_EQ(registry.counter("engine.clamped").value(),
            engine.stats().clamped);
  EXPECT_GT(engine.stats().raw_records, 0u);
}

// The tentpole acceptance test: warnings produced through the full
// client -> socket -> session -> shard -> engine path are byte-identical
// (through encode_warnings) to one in-process OnlineEngine per stream,
// including across a mid-stream CHECKPOINT + RESTORE of the shard set.
// Runs against both readiness backends (ServerBackendTest), which is the
// epoll rewrite's differential gate.
class ServedEquivalenceTest : public ::testing::TestWithParam<PollerBackend> {
};

INSTANTIATE_TEST_SUITE_P(
    Backends, ServedEquivalenceTest,
    ::testing::Values(PollerBackend::kEpoll, PollerBackend::kPoll),
    [](const ::testing::TestParamInfo<PollerBackend>& info) {
      return std::string(to_string(info.param));
    });

TEST_P(ServedEquivalenceTest, ByteIdenticalAcrossCheckpointRestore) {
  const ThreePhasePredictor tpp;
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.02);
  constexpr std::size_t kStreams = 3;
  const auto streams = split_streams(g, kStreams, 600);

  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());

  // In-process oracle: one engine per stream, same options, same factory.
  // (deque: OnlineEngine is move-only with a non-noexcept move.)
  std::deque<OnlineEngine> oracle;
  std::vector<std::string> oracle_bytes(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    oracle.emplace_back(options.shards.predictor_factory(),
                        options.shards.engine);
  }
  const auto feed_oracle = [&oracle, &oracle_bytes](
                               std::size_t s,
                               const std::vector<WireRecord>& slice) {
    std::vector<Warning> warnings;
    for (const WireRecord& wr : slice) {
      for (Warning& w : oracle[s].feed(wr.record, wr.entry)) {
        warnings.push_back(std::move(w));
      }
    }
    oracle_bytes[s] += encode_warnings(warnings);
  };
  const auto slice_of = [&streams](std::size_t s, std::size_t begin,
                                   std::size_t end) {
    const auto& all = streams[s];
    begin = std::min(begin, all.size());
    end = std::min(end, all.size());
    return std::vector<WireRecord>(all.begin() + begin, all.begin() + end);
  };

  std::vector<std::string> served_bytes(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) {
    const std::size_t half = streams[s].size() / 2;
    const std::size_t doomed_end = half + streams[s].size() / 4;

    // First half, served and polled; oracle follows.
    client.submit_all(s, slice_of(s, 0, half));
    served_bytes[s] += encode_warnings(client.poll_warnings(s));
    feed_oracle(s, slice_of(s, 0, half));

    // Checkpoint, then submit a slice whose effects the RESTORE must
    // fully roll back (its warnings are never polled).
    const std::string blob = client.checkpoint();
    client.submit_all(s, slice_of(s, half, doomed_end));
    client.restore(blob);

    // Resume from the checkpointed state: re-submit the rolled-back
    // slice and the remainder. The oracle feeds them exactly once.
    client.submit_all(s, slice_of(s, half, streams[s].size()));
    served_bytes[s] += encode_warnings(client.poll_warnings(s));
    feed_oracle(s, slice_of(s, half, streams[s].size()));

    EXPECT_EQ(served_bytes[s], oracle_bytes[s]) << "stream " << s;
    EXPECT_FALSE(served_bytes[s].empty());
  }

  // The admin plane saw it all: stats JSON is parseable text with the
  // serve counters present and nonzero.
  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find("\"serve.records_in\":"), std::string::npos);
  EXPECT_NE(stats.find("\"serve.checkpoints\":" + std::to_string(kStreams)),
            std::string::npos);
  // Some shard (stream ids hash, so not necessarily shard 0) aggregates
  // its engines' counters under the shardN.engine. prefix.
  EXPECT_NE(stats.find(".engine.raw_records\":"), std::string::npos);
  EXPECT_NE(stats.find("\"serve.warning_age_micros\":{"), std::string::npos);

  client.shutdown_server();
  server.stop();
  EXPECT_FALSE(server.running());
}

// Same service, shard-level worker threads: determinism must not depend
// on draining inline (shards are disjoint, streams stay ordered).
TEST_P(ServedEquivalenceTest, WorkerThreadsPreserveStreamOrder) {
  const ThreePhasePredictor tpp;
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto streams = split_streams(g, 2, 200);

  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  options.shards.worker_threads = 2;
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());

  for (std::size_t s = 0; s < streams.size(); ++s) {
    OnlineEngine engine(options.shards.predictor_factory(),
                        options.shards.engine);
    std::vector<Warning> expected;
    for (const WireRecord& wr : streams[s]) {
      for (Warning& w : engine.feed(wr.record, wr.entry)) {
        expected.push_back(std::move(w));
      }
    }
    client.submit_all(s, streams[s]);
    EXPECT_EQ(encode_warnings(client.poll_warnings(s)),
              encode_warnings(expected))
        << "stream " << s;
  }
  client.shutdown_server();
  server.stop();
}

TEST_P(ServerBackendTest, StopIsIdempotentAndPortIsEphemeral) {
  const ThreePhasePredictor tpp;
  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());
  server.stop();
  server.stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace bglpred::serve
