// Fault-injection property tests for the columnar log store: every
// injected damage class must surface as the matching typed diagnostic
// under a strict open, and a lenient open must salvage every intact
// segment — with whatever survives replaying as an exact (gap-allowed)
// subsequence of the clean oracle.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "faultinject/store_faults.hpp"
#include "logstore/convert.hpp"
#include "logstore/cursor.hpp"
#include "logstore/store.hpp"
#include "raslog/io.hpp"
#include "simgen/generator.hpp"

namespace bglpred {
namespace {

struct FaultCase {
  StoreFault fault;
  logstore::StoreFaultClass expected;
};

const std::vector<FaultCase>& fault_cases() {
  static const std::vector<FaultCase> cases = {
      {StoreFault::kFooterCorruption, logstore::StoreFaultClass::kBadFooter},
      {StoreFault::kTruncatedColumn, logstore::StoreFaultClass::kBadColumn},
      {StoreFault::kManifestMismatch,
       logstore::StoreFaultClass::kManifestMismatch},
      {StoreFault::kManifestCorruption,
       logstore::StoreFaultClass::kBadManifest},
  };
  return cases;
}

/// A fresh multi-segment store built from a deterministic log.
std::string build_store(const RasLog& log, const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  logstore::StoreOptions options;
  options.segment_records = 256;  // several segments to salvage around
  options.block_records = 64;
  logstore::store_from_log(log, dir, /*stream=*/0, options);
  return dir;
}

RasLog oracle_log(std::uint64_t seed) {
  RasLog log = std::move(
      LogGenerator(SystemProfile::anl()).generate(0.008, seed).log);
  log.sort_by_time();
  return log;
}

/// Replays the whole store and asserts the result is an in-order,
/// field-exact subsequence of `oracle` (lenient opens drop whole
/// segments, so survivors are the oracle minus contiguous gaps).
std::size_t expect_subsequence_of(const logstore::StoreReader& reader,
                                  const RasLog& oracle) {
  logstore::Cursor cursor = reader.scan();
  logstore::StoreRecord got;
  std::size_t oracle_i = 0;
  std::size_t replayed = 0;
  while (cursor.next(got)) {
    bool matched = false;
    for (; oracle_i < oracle.size(); ++oracle_i) {
      const RasRecord& want = oracle.records()[oracle_i];
      if (got.rec.time == want.time && got.rec.location == want.location &&
          got.rec.severity == want.severity &&
          got.rec.subcategory == want.subcategory &&
          got.entry == oracle.text_of(want)) {
        matched = true;
        ++oracle_i;
        break;
      }
    }
    EXPECT_TRUE(matched) << "replayed record " << replayed
                         << " not found in oracle order";
    if (!matched) {
      break;
    }
    ++replayed;
  }
  return replayed;
}

TEST(LogStoreFaultTest, StrictOpenRaisesTypedDiagnostics) {
  const RasLog log = oracle_log(1);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const FaultCase& c : fault_cases()) {
      const std::string dir = build_store(log, "store_fault_strict");
      Rng rng(seed);
      const std::string what = inject_store_fault(dir, c.fault, rng);
      try {
        logstore::StoreReader::open(dir);
        FAIL() << "strict open accepted a damaged store (seed " << seed
               << ", " << what << ")";
      } catch (const logstore::StoreCorruption& e) {
        EXPECT_EQ(static_cast<int>(e.cls()), static_cast<int>(c.expected))
            << "seed " << seed << ": " << what << " -> " << e.what();
      }
    }
  }
}

TEST(LogStoreFaultTest, LenientOpenSalvagesIntactSegments) {
  const RasLog log = oracle_log(2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const FaultCase& c : fault_cases()) {
      if (c.fault == StoreFault::kManifestCorruption) {
        continue;  // covered by LenientRecoversFromManifestDamage
      }
      const std::string dir = build_store(log, "store_fault_lenient");
      Rng rng(seed);
      const std::string what = inject_store_fault(dir, c.fault, rng);

      logstore::StoreOpenReport report;
      const logstore::StoreReader reader =
          logstore::StoreReader::open(dir, ReadOptions::lenient(), &report);
      EXPECT_EQ(report.segments_dropped, 1u) << what;
      EXPECT_EQ(report.by_class[static_cast<std::size_t>(c.expected)], 1u)
          << "seed " << seed << ": " << what;
      EXPECT_EQ(report.segments_opened, report.segments_listed - 1) << what;
      EXPECT_FALSE(report.samples.empty()) << what;
      EXPECT_LT(reader.record_count(), log.size()) << what;
      EXPECT_GT(reader.record_count(), 0u) << what;

      const std::size_t replayed = expect_subsequence_of(reader, log);
      EXPECT_EQ(replayed, reader.record_count()) << what;
    }
  }
}

TEST(LogStoreFaultTest, LenientRecoversFromManifestDamage) {
  const RasLog log = oracle_log(3);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::string dir = build_store(log, "store_fault_manifest");
    Rng rng(seed);
    const std::string what =
        inject_store_fault(dir, StoreFault::kManifestCorruption, rng);

    // Strict refuses; lenient falls back to the directory scan and
    // recovers every record (the segments themselves are intact).
    EXPECT_THROW(logstore::StoreReader::open(dir), logstore::StoreCorruption)
        << what;
    logstore::StoreOpenReport report;
    const logstore::StoreReader reader =
        logstore::StoreReader::open(dir, ReadOptions::lenient(), &report);
    EXPECT_TRUE(report.manifest_recovered) << what;
    EXPECT_EQ(
        report.by_class[static_cast<std::size_t>(
            logstore::StoreFaultClass::kBadManifest)],
        1u)
        << what;
    EXPECT_EQ(reader.record_count(), log.size()) << what;
    const std::size_t replayed = expect_subsequence_of(reader, log);
    EXPECT_EQ(replayed, log.size()) << what;
  }
}

TEST(LogStoreFaultTest, ErrorBudgetStopsMassSalvage) {
  // With a tight error budget, even lenient opens give up when the
  // dropped fraction exceeds the cap.
  const RasLog log = oracle_log(4);
  const std::string dir = build_store(log, "store_fault_budget");
  Rng rng(9);
  inject_store_fault(dir, StoreFault::kManifestMismatch, rng);
  EXPECT_THROW(
      logstore::StoreReader::open(dir, ReadOptions::lenient(0.001), nullptr),
      ParseError);
}

}  // namespace
}  // namespace bglpred
