// Property tests for the fault-injection harness (DESIGN.md §7): lenient
// ingest must survive every injected fault class with a reconciling
// report, and the hardened OnlineEngine must match its in-order /
// uninterrupted oracle under reordering and checkpoint/restore.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "core/online.hpp"
#include "core/three_phase.hpp"
#include "faultinject/faults.hpp"
#include "raslog/binary_io.hpp"
#include "raslog/io.hpp"
#include "simgen/generator.hpp"

namespace bglpred {
namespace {

std::string generated_log_text(double scale = 0.01) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(scale);
  std::stringstream buffer;
  write_log(buffer, g.log);
  return buffer.str();
}

void expect_same_warnings(const std::vector<Warning>& a,
                          const std::vector<Warning>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].issued_at, b[i].issued_at) << "warning " << i;
    EXPECT_EQ(a[i].window_begin, b[i].window_begin) << "warning " << i;
    EXPECT_EQ(a[i].window_end, b[i].window_end) << "warning " << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << "warning " << i;
    EXPECT_EQ(a[i].source, b[i].source) << "warning " << i;
    EXPECT_EQ(a[i].mergeable, b[i].mergeable) << "warning " << i;
  }
}

// ---- lenient text ingest under injected faults -------------------------

TEST(FaultInjectTest, LenientSurvivesFieldCorruption) {
  const std::string clean = generated_log_text();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    TextFaultOptions opts;
    opts.field_corruption_rate = 0.2;
    InjectionStats stats;
    const std::string dirty = inject_text_faults(clean, opts, rng, &stats);
    EXPECT_GT(stats.corrupted_fields, 0u);
    std::stringstream in(dirty);
    IngestReport report;
    RasLog log;
    EXPECT_NO_THROW(log = read_log(in, ReadOptions::lenient(), &report))
        << "seed " << seed;
    EXPECT_TRUE(report.reconciles());
    EXPECT_GT(report.records_kept, 0u);
  }
}

TEST(FaultInjectTest, LenientSurvivesLineTruncation) {
  const std::string clean = generated_log_text();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    TextFaultOptions opts;
    opts.line_truncation_rate = 0.2;
    InjectionStats stats;
    const std::string dirty = inject_text_faults(clean, opts, rng, &stats);
    EXPECT_GT(stats.truncated_lines, 0u);
    std::stringstream in(dirty);
    IngestReport report;
    EXPECT_NO_THROW(read_log(in, ReadOptions::lenient(), &report))
        << "seed " << seed;
    EXPECT_TRUE(report.reconciles());
  }
}

TEST(FaultInjectTest, LenientSurvivesCombinedTextFaults) {
  const std::string clean = generated_log_text();
  Rng rng(99);
  TextFaultOptions opts;
  opts.field_corruption_rate = 0.3;
  opts.line_truncation_rate = 0.3;
  const std::string dirty = inject_text_faults(clean, opts, rng);
  std::stringstream in(dirty);
  IngestReport report;
  EXPECT_NO_THROW(read_log(in, ReadOptions::lenient(), &report));
  EXPECT_TRUE(report.reconciles());
  EXPECT_EQ(report.records_kept + report.records_dropped,
            report.records_attempted);
}

TEST(FaultInjectTest, DuplicateStormLinesAllParse) {
  const std::string clean = generated_log_text();
  Rng rng(7);
  DuplicateStormOptions opts;
  opts.duplicate_rate = 0.1;
  opts.burst = 4;
  InjectionStats stats;
  const std::string stormy =
      inject_duplicate_storm(clean, opts, rng, &stats);
  EXPECT_GT(stats.duplicated_lines, 0u);
  EXPECT_EQ(stats.lines_out, stats.lines_in + stats.duplicated_lines);
  std::stringstream in(stormy);
  IngestReport report;
  RasLog log;
  EXPECT_NO_THROW(log = read_log(in, ReadOptions::lenient(), &report));
  // Duplicates are well-formed lines: nothing is dropped, and the log
  // grows by exactly the injected copies.
  EXPECT_EQ(report.records_dropped, 0u);
  EXPECT_EQ(log.size(), report.records_attempted);
  EXPECT_TRUE(report.reconciles());
}

// ---- lenient binary ingest under injected faults -----------------------

TEST(FaultInjectTest, BinaryTruncationSalvagesPrefix) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  std::stringstream buffer;
  write_log_binary(buffer, g.log);
  const std::string blob = buffer.str();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    InjectionStats stats;
    const std::string cut = truncate_blob(blob, rng, 0.0, &stats);
    EXPECT_EQ(cut.size() + stats.removed_bytes, blob.size());
    std::stringstream in(cut);
    IngestReport report;
    if (cut.size() < 8) {
      // Not even a full magic: indistinguishable from a wrong file.
      EXPECT_THROW(read_log_binary(in, ReadOptions::lenient(), &report),
                   ParseError);
      continue;
    }
    RasLog log;
    EXPECT_NO_THROW(
        log = read_log_binary(in, ReadOptions::lenient(), &report))
        << "seed " << seed << " size " << cut.size();
    EXPECT_TRUE(report.reconciles());
    EXPECT_EQ(log.size(), report.records_kept);
  }
}

TEST(FaultInjectTest, BinaryCorruptionNeverThrowsLenient) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  std::stringstream buffer;
  write_log_binary(buffer, g.log);
  const std::string blob = buffer.str();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    InjectionStats stats;
    const std::string dirty = corrupt_blob(blob, 0.001, rng, 8, &stats);
    ASSERT_EQ(dirty.size(), blob.size());
    std::stringstream in(dirty);
    IngestReport report;
    EXPECT_NO_THROW(read_log_binary(in, ReadOptions::lenient(), &report))
        << "seed " << seed;
    EXPECT_TRUE(report.reconciles());
  }
}

// ---- reorder tolerance -------------------------------------------------

TEST(FaultInjectTest, ReorderedStreamMatchesInOrderOracle) {
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const EventClassifier classifier;
  const std::vector<RasRecord>& sorted = g.log.records();
  ASSERT_TRUE(g.log.is_time_sorted());

  SkewOptions skew;
  skew.skew_probability = 0.5;
  skew.max_skew = 120;
  Rng rng(11);
  InjectionStats stats;
  const std::vector<RasRecord> skewed =
      inject_timestamp_skew({sorted.begin(), sorted.end()}, skew, rng,
                            &stats);
  ASSERT_EQ(skewed.size(), sorted.size());
  EXPECT_GT(stats.skewed_records, 0u);

  const ThreePhasePredictor tpp;
  OnlineOptions engine_opts;
  engine_opts.reorder_horizon = skew.max_skew + 1;
  OnlineEngine oracle(tpp.make_predictor(Method::kEveryFailure),
                      engine_opts);
  OnlineEngine hardened(tpp.make_predictor(Method::kEveryFailure),
                        engine_opts);

  std::vector<Warning> oracle_warnings;
  for (const RasRecord& rec : sorted) {
    for (Warning& w : oracle.feed(rec, g.log.text_of(rec))) {
      oracle_warnings.push_back(std::move(w));
    }
  }
  for (Warning& w : oracle.flush()) {
    oracle_warnings.push_back(std::move(w));
  }

  std::vector<Warning> skewed_warnings;
  for (const RasRecord& rec : skewed) {
    for (Warning& w : hardened.feed(rec, g.log.text_of(rec))) {
      skewed_warnings.push_back(std::move(w));
    }
  }
  for (Warning& w : hardened.flush()) {
    skewed_warnings.push_back(std::move(w));
  }

  // Skew ≤ horizon: the reorder buffer fully repairs the stream, so the
  // warning sequences are byte-identical and nothing was clamped.
  expect_same_warnings(oracle_warnings, skewed_warnings);
  EXPECT_EQ(hardened.stats().forwarded, oracle.stats().forwarded);
  EXPECT_EQ(hardened.stats().clamped, 0u);
  EXPECT_GT(hardened.stats().reordered, 0u);
}

// ---- checkpoint/restore ------------------------------------------------

TEST(FaultInjectTest, CheckpointedEngineMatchesUninterrupted) {
  // The ISSUE's acceptance property: train a meta predictor, stream half
  // the tail through an engine, checkpoint it, restore into a fresh
  // engine, and verify the restored engine finishes the stream with
  // byte-identical warnings to an engine that never stopped.
  GeneratedLog generated =
      LogGenerator(SystemProfile::anl()).generate(0.02);
  const RasLog& raw = generated.log;
  const std::size_t cut = raw.size() * 8 / 10;
  RasLog training = raw.subset(
      {raw.records().begin(),
       raw.records().begin() + static_cast<std::ptrdiff_t>(cut)});
  ThreePhasePredictor pipeline;
  pipeline.run_phase1(training);

  const auto make_trained = [&]() {
    PredictorPtr p = pipeline.make_predictor(Method::kMeta);
    p->train(training);
    p->reset();
    return p;
  };

  PredictorPtr continuous_meta = make_trained();
  OnlineEngine continuous(std::move(continuous_meta));
  OnlineEngine interrupted(make_trained());
  ASSERT_TRUE(interrupted.predictor().checkpointable());

  const std::size_t mid = cut + (raw.size() - cut) / 2;
  std::vector<Warning> continuous_w;
  std::vector<Warning> interrupted_w;
  const auto drain = [](std::vector<Warning>& into,
                        std::vector<Warning>&& out) {
    for (Warning& w : out) {
      into.push_back(std::move(w));
    }
  };
  for (std::size_t i = cut; i < mid; ++i) {
    const RasRecord& rec = raw.records()[i];
    drain(continuous_w, continuous.feed(rec, raw.text_of(rec)));
    drain(interrupted_w, interrupted.feed(rec, raw.text_of(rec)));
  }

  // Snapshot mid-stream and restore into a fresh engine + predictor.
  std::stringstream blob;
  interrupted.save(blob);
  OnlineEngine restored = OnlineEngine::restore(blob, make_trained());
  EXPECT_EQ(restored.stats().raw_records,
            interrupted.stats().raw_records);

  for (std::size_t i = mid; i < raw.size(); ++i) {
    const RasRecord& rec = raw.records()[i];
    drain(continuous_w, continuous.feed(rec, raw.text_of(rec)));
    drain(interrupted_w, restored.feed(rec, raw.text_of(rec)));
  }
  drain(continuous_w, continuous.flush());
  drain(interrupted_w, restored.flush());

  expect_same_warnings(continuous_w, interrupted_w);
  EXPECT_EQ(restored.stats().raw_records, continuous.stats().raw_records);
  EXPECT_EQ(restored.stats().forwarded, continuous.stats().forwarded);
  EXPECT_EQ(restored.stats().warnings, continuous.stats().warnings);
}

TEST(FaultInjectTest, RestoreRejectsWrongPredictor) {
  const ThreePhasePredictor tpp;
  OnlineEngine engine(tpp.make_predictor(Method::kEveryFailure));
  std::stringstream blob;
  engine.save(blob);
  EXPECT_THROW(
      OnlineEngine::restore(blob, tpp.make_predictor(Method::kPeriodic)),
      ParseError);
}

}  // namespace
}  // namespace bglpred
