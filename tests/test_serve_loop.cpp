// Event-loop behavior tests for the epoll serve plane (DESIGN §8.3),
// run against BOTH readiness backends: edge-triggered epoll and the
// poll() differential oracle. Covers the idle-wakeup regression (the
// loop must block indefinitely, not tick), pipelined submits staying
// byte-identical to an in-process engine — including under forced
// backpressure, where the session's busy latch must keep accepted
// records an exact prefix of each window — and multi-connection
// liveness under the round-robin service discipline.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/binary.hpp"
#include "core/three_phase.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/shard_manager.hpp"
#include "simgen/generator.hpp"

namespace bglpred::serve {
namespace {

std::function<PredictorPtr()> every_failure_factory(
    const ThreePhasePredictor& tpp) {
  return [&tpp] { return tpp.make_predictor(Method::kEveryFailure); };
}

ShardOptions small_shard_options(const ThreePhasePredictor& tpp) {
  ShardOptions options;
  options.shard_count = 2;
  options.queue_capacity = 256;
  options.predictor_factory = every_failure_factory(tpp);
  return options;
}

std::vector<WireRecord> stream_records(const GeneratedLog& g,
                                       std::size_t max_records) {
  std::vector<WireRecord> out;
  const auto& records = g.log.records();
  const std::size_t n = std::min(max_records, records.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(WireRecord{records[i], g.log.text_of(records[i])});
  }
  return out;
}

std::string oracle_warning_bytes(const ShardOptions& options,
                                 const std::vector<WireRecord>& records) {
  OnlineEngine engine(options.predictor_factory(), options.engine);
  std::vector<Warning> warnings;
  for (const WireRecord& wr : records) {
    for (Warning& w : engine.feed(wr.record, wr.entry)) {
      warnings.push_back(std::move(w));
    }
  }
  return encode_warnings(warnings);
}

class ServeLoopTest : public ::testing::TestWithParam<PollerBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, ServeLoopTest,
    ::testing::Values(PollerBackend::kEpoll, PollerBackend::kPoll),
    [](const ::testing::TestParamInfo<PollerBackend>& info) {
      return std::string(to_string(info.param));
    });

// The satellite regression test for the old 50 ms tick: an idle server
// — open connection, no traffic — must not wake at all. Both backends
// park in wait(-1); only fd readiness or notify() may rouse them.
TEST_P(ServeLoopTest, IdleServerDoesNotBusyWake) {
  const ThreePhasePredictor tpp;
  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  client.stats_json();  // a full roundtrip settles accept + first reads

  const Counter& wakeups = server.metrics().counter("serve.wakeups");
  // Give any tail wakeups from the roundtrip a moment to land, then
  // demand total silence. The removed tick fired every 50 ms, so 300 ms
  // of idle would show ~6 wakeups on a regression.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::uint64_t before = wakeups.value();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(wakeups.value(), before) << "idle event loop woke up";

  client.shutdown_server();
  server.stop();
  EXPECT_GT(wakeups.value(), before);  // the shutdown itself wakes it
}

// Pipelined submits (multi-frame windows, one vectored send) must be
// byte-identical to the in-process engine — same differential gate the
// blocking path passes.
TEST_P(ServeLoopTest, PipelinedSubmitMatchesInProcessEngine) {
  const ThreePhasePredictor tpp;
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.02);
  const auto records = stream_records(g, 400);
  ASSERT_FALSE(records.empty());

  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());

  client.submit_all_pipelined(77, records, /*batch_size=*/32, /*window=*/8);
  EXPECT_EQ(encode_warnings(client.poll_warnings(77)),
            oracle_warning_bytes(options.shards, records));

  client.shutdown_server();
  server.stop();
}

// Same equivalence with the shard queue squeezed so windows reliably
// hit REJECTED_BUSY mid-flight: the busy latch must auto-reject window
// followers, or records would reach the engine out of order and the
// byte comparison (ordering-sensitive through warning timestamps/
// windows) would diverge.
TEST_P(ServeLoopTest, PipelinedSubmitSurvivesBackpressureExactly) {
  const ThreePhasePredictor tpp;
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.02);
  const auto records = stream_records(g, 300);
  ASSERT_GT(records.size(), 100u);

  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  options.shards.shard_count = 1;
  options.shards.queue_capacity = 16;  // << one window (4 * 16 records)
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());

  const std::size_t busy_rounds =
      client.submit_all_pipelined(5, records, /*batch_size=*/16,
                                  /*window=*/4);
  EXPECT_GT(busy_rounds, 0u) << "backpressure was never exercised";
  EXPECT_EQ(encode_warnings(client.poll_warnings(5)),
            oracle_warning_bytes(options.shards, records));

  const std::string stats = client.stats_json();
  EXPECT_NE(stats.find("\"serve.records_rejected\":"), std::string::npos);
  client.shutdown_server();
  server.stop();
}

// The busy latch at the session layer, pinned directly: once a window
// head hits backpressure, a flagged follower must be auto-rejected with
// accepted=0 and WITHOUT touching the shards; the next unflagged head
// reopens the gate. This is the exact-prefix guarantee submit_all_
// pipelined's resume arithmetic relies on.
TEST(SessionPipelineTest, BusyLatchRejectsFollowersUntilNextWindowHead) {
  const ThreePhasePredictor tpp;
  MetricsRegistry registry;
  ShardOptions options = small_shard_options(tpp);
  options.shard_count = 1;
  options.queue_capacity = 2;
  ShardManager manager(options, registry);
  Session session(manager);

  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.01);
  const auto records = stream_records(g, 2);
  ASSERT_EQ(records.size(), 2u);

  // Fill the queue so the head frame is rejected with nothing applied.
  const RasRecord filler;
  ASSERT_EQ(manager.submit(9, filler, "a"), ShardManager::Submit::kAccepted);
  ASSERT_EQ(manager.submit(9, filler, "b"), ShardManager::Submit::kAccepted);

  const auto submit_frame = [&records](std::uint32_t seq, std::uint16_t flags,
                                       std::size_t which) {
    Frame f;
    f.type = MessageType::kSubmitRecord;
    f.stream_id = 1;
    f.seq = seq;
    f.flags = flags;
    encode_record(f.payload, records[which].record, records[which].entry);
    return encode_frame(f);
  };
  const auto reply_of = [](const std::string& bytes) {
    FrameReader reader;
    reader.feed(bytes);
    Frame frame;
    FrameError error;
    EXPECT_EQ(reader.next(frame, error), FrameReader::Status::kFrame);
    return frame;
  };
  const auto accepted_of = [](const Frame& reply) {
    BytesReader in(reply.payload);
    return in.read<std::uint64_t>("accepted count");
  };

  // Window head: genuine backpressure.
  std::string out;
  session.on_bytes(submit_frame(1, 0, 0), out);
  Frame reply = reply_of(out);
  EXPECT_EQ(reply.type, MessageType::kRejectedBusy);
  EXPECT_EQ(accepted_of(reply), 0u);

  // Flagged follower: auto-rejected by the latch — the shards never see
  // it (records_rejected counts only real shard refusals, and the head
  // already accounted its own).
  const std::uint64_t rejected_before =
      manager.metrics().records_rejected.value();
  out.clear();
  session.on_bytes(submit_frame(2, kFlagPipelineFollow, 1), out);
  reply = reply_of(out);
  EXPECT_EQ(reply.type, MessageType::kRejectedBusy);
  EXPECT_EQ(accepted_of(reply), 0u);
  EXPECT_EQ(manager.metrics().records_rejected.value(), rejected_before);

  // Queue drains; the next unflagged head clears the latch and both
  // records (fresh seqs — the rejected ones advanced no watermark) go
  // through, in order.
  manager.drain();
  out.clear();
  session.on_bytes(submit_frame(3, 0, 0), out);
  EXPECT_EQ(reply_of(out).type, MessageType::kOk);
  out.clear();
  session.on_bytes(submit_frame(4, kFlagPipelineFollow, 1), out);
  EXPECT_EQ(reply_of(out).type, MessageType::kOk);
  EXPECT_EQ(manager.metrics().duplicate_frames.value(), 0u);
}

// Liveness and fairness across many simultaneous connections: every
// client (each its own stream, its own socket) must complete pipelined
// submits and polls even while its neighbors flood the loop. Exercises
// the rotating-cursor service rounds with far more connections than
// service rounds per wakeup.
TEST_P(ServeLoopTest, ConcurrentClientsAllMakeProgress) {
  const ThreePhasePredictor tpp;
  GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(0.02);
  const auto records = stream_records(g, 120);
  ASSERT_FALSE(records.empty());

  ServerOptions options;
  options.backend = GetParam();
  options.shards = small_shard_options(tpp);
  Server server(options);
  server.start();
  const std::string expected =
      oracle_warning_bytes(options.shards, records);

  constexpr std::size_t kClients = 12;
  std::vector<std::string> served(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Client::connect(server.port());
      client.submit_all_pipelined(c + 1, records, /*batch_size=*/16,
                                  /*window=*/4);
      served[c] = encode_warnings(client.poll_warnings(c + 1));
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(served[c], expected) << "client " << c;
  }

  // All client sockets are closed: the reaper must release every
  // connection (EOF/RDHUP path) without an explicit shutdown frame.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.metrics().gauge("serve.connections").value() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.metrics().gauge("serve.connections").value(), 0);
  server.stop();
}

}  // namespace
}  // namespace bglpred::serve
