// Differential tests for the columnar log store (DESIGN.md §10):
// cursor replay must match the sequential readers byte-for-byte, the
// k-way merge must equal a sorted concatenation, and a tail-follower
// must see exactly the segments the writer published.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_io.hpp"
#include "core/online.hpp"
#include "core/three_phase.hpp"
#include "logstore/convert.hpp"
#include "logstore/cursor.hpp"
#include "logstore/store.hpp"
#include "preprocess/fused_ingest.hpp"
#include "preprocess/pipeline.hpp"
#include "raslog/binary_io.hpp"
#include "raslog/io.hpp"
#include "simgen/generator.hpp"
#include "simgen/stream.hpp"

namespace bglpred {
namespace {

/// Empty scratch directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

RasLog generated_log(std::uint64_t seed, double scale = 0.01) {
  RasLog log = std::move(
      LogGenerator(SystemProfile::anl()).generate(scale, seed).log);
  log.sort_by_time();
  return log;
}

/// Field-by-field equality of a replayed record against the source log.
void expect_same_record(const logstore::StoreRecord& got,
                        const RasRecord& want, const RasLog& source,
                        std::size_t index) {
  EXPECT_EQ(got.rec.time, want.time) << "record " << index;
  EXPECT_EQ(got.rec.location, want.location) << "record " << index;
  EXPECT_EQ(got.rec.job, want.job) << "record " << index;
  EXPECT_EQ(got.rec.event_type, want.event_type) << "record " << index;
  EXPECT_EQ(got.rec.facility, want.facility) << "record " << index;
  EXPECT_EQ(got.rec.severity, want.severity) << "record " << index;
  EXPECT_EQ(got.rec.subcategory, want.subcategory) << "record " << index;
  EXPECT_EQ(got.entry, source.text_of(want)) << "record " << index;
}

TEST(LogStoreTest, ScanReplaysSourceExactly) {
  const RasLog log = generated_log(7);
  ASSERT_GT(log.size(), 1000u);
  const std::string dir = fresh_dir("store_scan");
  logstore::StoreOptions options;
  options.segment_records = 512;  // force many segments
  options.block_records = 64;
  const logstore::ConvertStats stats =
      logstore::store_from_log(log, dir, /*stream=*/0, options);
  EXPECT_EQ(stats.records, log.size());
  EXPECT_GT(stats.segments, 1u);

  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  EXPECT_TRUE(reader.sealed());
  EXPECT_EQ(reader.record_count(), log.size());
  EXPECT_EQ(reader.min_time(), log.records().front().time);
  EXPECT_EQ(reader.max_time(), log.records().back().time);

  logstore::Cursor cursor = reader.scan();
  logstore::StoreRecord got;
  std::size_t i = 0;
  while (cursor.next(got)) {
    ASSERT_LT(i, log.size());
    expect_same_record(got, log.records()[i], log, i);
    ++i;
  }
  EXPECT_EQ(i, log.size());
  EXPECT_TRUE(cursor.done());
}

TEST(LogStoreTest, RangeCursorMatchesFilteredOracle) {
  const RasLog log = generated_log(11);
  const std::string dir = fresh_dir("store_range");
  logstore::StoreOptions options;
  options.segment_records = 256;
  options.block_records = 32;
  logstore::store_from_log(log, dir, 0, options);
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);

  const TimePoint lo = log.records().front().time;
  const TimePoint hi = log.records().back().time;
  const TimePoint span = hi - lo;
  // Windows: mid slice, exact-boundary slice, 1% slice, empty, all.
  const std::vector<std::pair<TimePoint, TimePoint>> windows = {
      {lo + span / 3, lo + span / 2},
      {log.records()[log.size() / 2].time,
       log.records()[log.size() / 2].time + 1},
      {lo + span / 2, lo + span / 2 + span / 100},
      {hi + 10, hi + 20},
      {lo, hi + 1},
  };
  for (const auto& [begin, end] : windows) {
    logstore::Cursor cursor = reader.range(begin, end);
    logstore::StoreRecord got;
    std::size_t matched = 0;
    for (const RasRecord& want : log.records()) {
      if (want.time < begin || want.time >= end) {
        continue;
      }
      ASSERT_TRUE(cursor.next(got)) << "window [" << begin << "," << end
                                    << ") record " << matched;
      expect_same_record(got, want, log, matched);
      ++matched;
    }
    EXPECT_FALSE(cursor.next(got))
        << "window [" << begin << "," << end << ") overshot";
  }
}

TEST(LogStoreTest, RangeSeekKeepsTiedRunStraddlingBlocks) {
  // A run of records tied at one timestamp spanning several index
  // blocks: range(t, t+1) must replay every tied record, including the
  // ones before the last block opening with t (regression: seek_block
  // used <= and skipped them).
  const std::string dir = fresh_dir("store_tied_seek");
  logstore::StoreOptions options;
  options.segment_records = 64;
  options.block_records = 8;
  constexpr TimePoint kTied = 5000;
  constexpr std::size_t kBefore = 13;  // mid-block start for the run
  constexpr std::size_t kRun = 20;     // > 2 full blocks of ties
  {
    logstore::StoreWriter writer(dir, options);
    RasRecord rec;
    for (std::size_t i = 0; i < kBefore; ++i) {
      rec.time = static_cast<TimePoint>(1000 + i);
      writer.append(rec, "before", 0);
    }
    rec.time = kTied;
    for (std::size_t i = 0; i < kRun; ++i) {
      writer.append(rec, "tied", 0);
    }
    for (std::size_t i = 0; i < kBefore; ++i) {
      rec.time = static_cast<TimePoint>(kTied + 100 + i);
      writer.append(rec, "after", 0);
    }
    writer.seal();
  }
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  logstore::Cursor cursor = reader.range(kTied, kTied + 1);
  logstore::StoreRecord got;
  std::size_t replayed = 0;
  while (cursor.next(got)) {
    EXPECT_EQ(got.rec.time, kTied);
    EXPECT_EQ(got.entry, "tied");
    ++replayed;
  }
  EXPECT_EQ(replayed, kRun);
}

TEST(LogStoreTest, StreamFilterReplaysOneStream) {
  const RasLog log = generated_log(13, 0.005);
  const std::string dir = fresh_dir("store_streams");
  logstore::StoreOptions options;
  options.segment_records = 128;
  {
    logstore::StoreWriter writer(dir, options);
    for (std::size_t i = 0; i < log.size(); ++i) {
      writer.append(log.records()[i], log.text_of(log.records()[i]), i % 3);
    }
    writer.seal();
  }
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  for (std::uint64_t stream = 0; stream < 3; ++stream) {
    logstore::Cursor cursor = reader.stream(stream);
    logstore::StoreRecord got;
    std::size_t matched = 0;
    for (std::size_t i = stream; i < log.size(); i += 3) {
      ASSERT_TRUE(cursor.next(got)) << "stream " << stream;
      EXPECT_EQ(got.stream, stream);
      expect_same_record(got, log.records()[i], log, i);
      ++matched;
    }
    EXPECT_FALSE(cursor.next(got)) << "stream " << stream << " overshot";
    EXPECT_EQ(matched, log.size() / 3 + (stream < log.size() % 3 ? 1 : 0));
  }
  // A stream never written yields nothing (footer counts skip the
  // segments entirely).
  logstore::Cursor none = reader.stream(99);
  logstore::StoreRecord got;
  EXPECT_FALSE(none.next(got));
}

TEST(LogStoreTest, OnlineReplayByteIdenticalToBinaryOracle) {
  const RasLog log = generated_log(17);
  const std::string bin_path = testing::TempDir() + "/store_oracle.rasb";
  save_log_binary(bin_path, log);
  const std::string dir = fresh_dir("store_replay");
  logstore::convert_binary_log(bin_path, dir);

  const ThreePhasePredictor tpp;
  OnlineOptions online;
  online.reorder_horizon = 5 * kMinute;

  // Oracle: sequential binary read, fed record by record.
  OnlineEngine oracle(tpp.make_predictor(Method::kEveryFailure), online);
  const RasLog reloaded = load_log_binary(bin_path);
  for (const RasRecord& rec : reloaded.records()) {
    oracle.feed(rec, reloaded.text_of(rec));
  }
  oracle.flush();

  // Subject: cursor replay out of the mmapped store.
  OnlineEngine subject(tpp.make_predictor(Method::kEveryFailure), online);
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  logstore::Cursor cursor = reader.scan();
  logstore::StoreRecord record;
  while (cursor.next(record)) {
    subject.feed(record.rec, record.entry);
  }
  subject.flush();

  std::ostringstream oracle_blob;
  std::ostringstream subject_blob;
  oracle.save(oracle_blob);
  subject.save(subject_blob);
  EXPECT_EQ(oracle_blob.str(), subject_blob.str())
      << "replayed engine state diverged from the sequential oracle";
  std::filesystem::remove(bin_path);
}

/// The merge order MergeCursor promises: (time, location, severity,
/// entry text, source index).
struct MergedRow {
  TimePoint time;
  bgl::Location location;
  int severity;
  std::string entry;
  std::size_t source;

  bool operator<(const MergedRow& o) const {
    if (time != o.time) return time < o.time;
    if (location != o.location) return location < o.location;
    if (severity != o.severity) return severity < o.severity;
    if (entry != o.entry) return entry < o.entry;
    return source < o.source;
  }
  bool operator==(const MergedRow& o) const {
    return time == o.time && location == o.location &&
           severity == o.severity && entry == o.entry && source == o.source;
  }
};

TEST(LogStoreTest, MergeEqualsSortedConcatenation) {
  constexpr std::size_t kStores = 3;
  std::vector<logstore::StoreReader> readers;
  std::vector<MergedRow> expected;
  for (std::size_t s = 0; s < kStores; ++s) {
    RasLog log = generated_log(100 + s, 0.004);
    // RasLog::sort_by_time breaks ties by pool id; the merge breaks
    // them by entry *text*. Sort each source the merge's way so the
    // interleaving is a total order the oracle can reproduce.
    std::stable_sort(log.mutable_records().begin(),
                     log.mutable_records().end(),
                     [&log](const RasRecord& a, const RasRecord& b) {
                       if (a.time != b.time) return a.time < b.time;
                       if (a.location != b.location) {
                         return a.location < b.location;
                       }
                       if (a.severity != b.severity) {
                         return a.severity < b.severity;
                       }
                       return log.text_of(a) < log.text_of(b);
                     });
    const std::string dir = fresh_dir("store_merge_" + std::to_string(s));
    logstore::StoreOptions options;
    options.segment_records = 256;
    logstore::store_from_log(log, dir, /*stream=*/s, options);
    readers.push_back(logstore::StoreReader::open(dir));
    for (const RasRecord& rec : log.records()) {
      expected.push_back({rec.time, rec.location,
                          static_cast<int>(rec.severity), log.text_of(rec),
                          s});
    }
  }
  std::stable_sort(expected.begin(), expected.end());

  std::vector<logstore::Cursor> sources;
  for (const logstore::StoreReader& reader : readers) {
    sources.push_back(reader.scan());
  }
  logstore::MergeCursor merge(std::move(sources));
  logstore::StoreRecord record;
  std::size_t source = 0;
  std::size_t i = 0;
  while (merge.next(record, &source)) {
    ASSERT_LT(i, expected.size());
    const MergedRow got{record.rec.time, record.rec.location,
                        static_cast<int>(record.rec.severity),
                        std::string(record.entry), source};
    EXPECT_TRUE(got == expected[i])
        << "merge diverged from sorted concatenation at " << i;
    ++i;
  }
  EXPECT_EQ(i, expected.size());
}

TEST(LogStoreTest, TailFollowSeesExactlyPublishedSegments) {
  const RasLog log = generated_log(23, 0.003);
  ASSERT_GE(log.size(), 40u);
  const std::string dir = fresh_dir("store_tail");
  logstore::StoreOptions options;
  options.segment_records = 16;
  logstore::StoreWriter writer(dir, options);

  auto feed = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      writer.append(log.records()[i], log.text_of(log.records()[i]));
    }
  };

  // First segment must exist before a reader can open the store.
  feed(0, 16);
  logstore::StoreReader reader = logstore::StoreReader::open(dir);
  EXPECT_FALSE(reader.sealed());
  logstore::TailCursor tail(reader);

  auto drain = [&](std::size_t expect_from) -> std::size_t {
    logstore::StoreRecord record;
    std::size_t i = expect_from;
    while (tail.poll(record) == logstore::TailCursor::Status::kRecord) {
      if (i >= log.size()) {
        ADD_FAILURE() << "tail cursor replayed past the source log";
        break;
      }
      expect_same_record(record, log.records()[i], log, i);
      ++i;
    }
    return i;
  };

  // Exactly the published prefix is visible; buffered records are not.
  EXPECT_EQ(drain(0), 16u);
  logstore::StoreRecord record;
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kWait);

  feed(16, 36);  // publishes one more segment, leaves 4 buffered
  EXPECT_EQ(drain(16), 32u);
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kWait);

  writer.flush();  // short segment with the 4 buffered records
  EXPECT_EQ(drain(32), 36u);
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kWait);

  writer.seal();
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kEnd);
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kEnd);
}

TEST(LogStoreTest, WriterResumesUnsealedStoreAndSealRejectsAppends) {
  const RasLog log = generated_log(29, 0.003);
  ASSERT_GE(log.size(), 30u);
  const std::string dir = fresh_dir("store_resume");
  logstore::StoreOptions options;
  options.segment_records = 8;
  {
    logstore::StoreWriter writer(dir, options);
    for (std::size_t i = 0; i < 20; ++i) {
      writer.append(log.records()[i], log.text_of(log.records()[i]));
    }
    // No seal: destructor flushes, store stays appendable.
  }
  {
    logstore::StoreWriter writer(dir, options);
    EXPECT_EQ(writer.records_written(), 20u);  // resumed from the manifest
    for (std::size_t i = 20; i < 30; ++i) {
      writer.append(log.records()[i], log.text_of(log.records()[i]));
    }
    writer.seal();
  }
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  EXPECT_TRUE(reader.sealed());
  EXPECT_EQ(reader.record_count(), 30u);
  logstore::Cursor cursor = reader.scan();
  logstore::StoreRecord got;
  std::size_t i = 0;
  while (cursor.next(got)) {
    expect_same_record(got, log.records()[i], log, i);
    ++i;
  }
  EXPECT_EQ(i, 30u);
  // Sealed stores reject a new writer outright.
  EXPECT_THROW(logstore::StoreWriter{dir}, Error);
}

TEST(LogStoreTest, IngestTextMatchesLoadClassified) {
  const RasLog raw = generated_log(31, 0.005);
  const std::string text_path = testing::TempDir() + "/store_ingest.log";
  save_log(text_path, raw);
  const std::string dir = fresh_dir("store_ingest");

  PreprocessStats stats;
  const logstore::ConvertStats converted = logstore::ingest_text_to_store(
      text_path, dir, ReadOptions::strict(), {}, /*stream=*/0, {}, &stats);
  const RasLog oracle = load_classified(text_path, ReadOptions::strict());
  ASSERT_EQ(converted.records, oracle.size());
  EXPECT_EQ(stats.unique_events, oracle.size());

  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  logstore::Cursor cursor = reader.scan();
  logstore::StoreRecord got;
  std::size_t i = 0;
  while (cursor.next(got)) {
    ASSERT_LT(i, oracle.size());
    expect_same_record(got, oracle.records()[i], oracle, i);
    ++i;
  }
  EXPECT_EQ(i, oracle.size());
  std::filesystem::remove(text_path);
}

TEST(LogStoreTest, OrphanSegmentsAreInvisible) {
  const RasLog log = generated_log(37, 0.003);
  const std::string dir = fresh_dir("store_orphan");
  logstore::store_from_log(log, dir);
  // A crashed writer can leave a segment the manifest never adopted;
  // readers must not pick it up.
  atomic_write_file(dir + "/seg-000099.bgls", "garbage orphan bytes");
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  EXPECT_EQ(reader.record_count(), log.size());
}

TEST(LogStoreTest, EmptyStoreAndEmptyWindows) {
  const std::string dir = fresh_dir("store_empty");
  {
    logstore::StoreWriter writer(dir);
    writer.seal();  // zero records, sealed
  }
  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  EXPECT_TRUE(reader.sealed());
  EXPECT_EQ(reader.record_count(), 0u);
  EXPECT_EQ(reader.segment_count(), 0u);
  logstore::Cursor cursor = reader.scan();
  logstore::StoreRecord got;
  EXPECT_FALSE(cursor.next(got));
  EXPECT_TRUE(cursor.done());
}

// The streamed conversion path must land byte-identical stores to the
// whole-log path: the streaming generator's batch concatenation equals
// the oracle log, so the two stores replay record-for-record.
TEST(LogStoreTest, StoreFromSourceMatchesStoreFromLog) {
  constexpr std::uint64_t kSeed = 7;
  constexpr double kScale = 0.01;
  // The generator's output is already in canonical global order (time,
  // location, severity, entry text) — the order the streamed chunks
  // concatenate to. sort_by_time() would re-break ties differently.
  const RasLog oracle = std::move(
      LogGenerator(SystemProfile::anl()).generate(kScale, kSeed).log);

  StreamConfig config;
  config.scale = kScale;
  config.seed_offset = kSeed;
  StreamRecordSource source(SystemProfile::anl(), config);

  const std::string streamed_dir = fresh_dir("store_src_streamed");
  const std::string oracle_dir = fresh_dir("store_src_oracle");
  logstore::StoreOptions options;
  options.segment_records = 2048;
  const logstore::ConvertStats streamed_stats =
      logstore::store_from_source(source, streamed_dir, /*stream=*/5,
                                  options);
  const logstore::ConvertStats oracle_stats =
      logstore::store_from_log(oracle, oracle_dir, /*stream=*/5, options);
  EXPECT_EQ(streamed_stats.records, oracle.size());
  EXPECT_EQ(streamed_stats.records, oracle_stats.records);
  EXPECT_EQ(streamed_stats.segments, oracle_stats.segments);

  const logstore::StoreReader streamed_reader =
      logstore::StoreReader::open(streamed_dir);
  logstore::Cursor got_cursor = streamed_reader.scan();
  logstore::StoreRecord got;
  std::size_t i = 0;
  while (got_cursor.next(got)) {
    ASSERT_LT(i, oracle.size());
    EXPECT_EQ(got.stream, 5u) << "record " << i;
    expect_same_record(got, oracle.records()[i], oracle, i);
    ++i;
  }
  EXPECT_EQ(i, oracle.size());
}

// Routed conversion: stream_of shards one source across logical stream
// ids inside the store. Per-stream cursors partition the log, every
// record lands on its own hash's stream, and the k-way merge of the
// per-stream cursors restores exactly the full-scan order.
TEST(LogStoreTest, RoutedStreamsPartitionAndMergeBack) {
  constexpr std::uint32_t kStreams = 3;
  StreamConfig config;
  config.scale = 0.005;
  StreamRecordSource source(SystemProfile::anl(), config);

  const std::string dir = fresh_dir("store_src_routed");
  logstore::StoreOptions options;
  options.segment_records = 1024;
  const logstore::ConvertStats stats = logstore::store_from_source(
      source, dir,
      [](const RasRecord& rec) { return stream_of(rec, kStreams); },
      options);
  ASSERT_GT(stats.records, 0u);

  const logstore::StoreReader reader = logstore::StoreReader::open(dir);
  std::size_t per_stream_total = 0;
  for (std::uint64_t s = 0; s < kStreams; ++s) {
    logstore::Cursor cursor = reader.stream(s);
    logstore::StoreRecord got;
    while (cursor.next(got)) {
      EXPECT_EQ(stream_of(got.rec, kStreams), s);
      ++per_stream_total;
    }
  }
  EXPECT_EQ(per_stream_total, stats.records);

  std::vector<logstore::Cursor> sources;
  for (std::uint64_t s = 0; s < kStreams; ++s) {
    sources.push_back(reader.stream(s));
  }
  logstore::MergeCursor merge(std::move(sources));
  logstore::Cursor scan = reader.scan();
  logstore::StoreRecord merged;
  logstore::StoreRecord scanned;
  std::size_t matched = 0;
  while (merge.next(merged)) {
    ASSERT_TRUE(scan.next(scanned)) << "merge overshot at " << matched;
    EXPECT_EQ(merged.rec.time, scanned.rec.time) << "record " << matched;
    EXPECT_EQ(merged.rec.location, scanned.rec.location)
        << "record " << matched;
    EXPECT_EQ(merged.rec.severity, scanned.rec.severity)
        << "record " << matched;
    EXPECT_EQ(merged.entry, scanned.entry) << "record " << matched;
    ++matched;
  }
  EXPECT_FALSE(scan.next(scanned));
  EXPECT_EQ(matched, stats.records);
}

// A tail-follower tracking a streamed conversion in flight sees exactly
// the published batches, then kEnd at seal — the live-ingest shape of
// the store_from_source path.
TEST(LogStoreTest, TailFollowsStreamedConversion) {
  StreamConfig config;
  config.scale = 0.01;
  StreamRecordSource source(SystemProfile::anl(), config);

  const std::string dir = fresh_dir("store_src_tail");
  logstore::StoreOptions options;
  options.segment_records = 1u << 16;  // flush() decides publication
  logstore::StoreWriter writer(dir, options);

  RasLog batch;
  ASSERT_TRUE(source.next_batch(batch));
  std::size_t written = 0;
  const auto append_batch = [&] {
    for (const RasRecord& rec : batch.records()) {
      writer.append(rec, batch.text_of(rec));
      ++written;
    }
    writer.flush();
  };
  append_batch();

  logstore::StoreReader reader = logstore::StoreReader::open(dir);
  logstore::TailCursor tail(reader);
  std::size_t replayed = 0;
  logstore::StoreRecord record;
  const auto drain = [&] {
    while (tail.poll(record) == logstore::TailCursor::Status::kRecord) {
      ++replayed;
    }
  };
  drain();
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kWait);

  while (source.next_batch(batch)) {
    append_batch();
    drain();
    EXPECT_EQ(replayed, written);
  }
  writer.seal();
  drain();
  EXPECT_EQ(replayed, written);
  EXPECT_EQ(tail.poll(record), logstore::TailCursor::Status::kEnd);
  // The side channel agrees with what landed: every generated record
  // was replayed (unique events expand to >= 1 record each).
  EXPECT_GE(replayed, source.totals().unique_events);
}

}  // namespace
}  // namespace bglpred
