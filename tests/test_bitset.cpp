// Tests for the bitset substrate behind the mining/matching fast paths:
// ItemBitset / DynamicBitset units, the dense item encoding, and
// randomized differential checks pinning every fast path to its retained
// naive reference (vertical support counting, Eclat-style Apriori,
// indexed rule matching).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/bitset.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mining/apriori.hpp"
#include "mining/fpgrowth.hpp"
#include "mining/items.hpp"
#include "mining/rules.hpp"
#include "mining/transaction.hpp"

namespace bglpred {
namespace {

// ---- ItemBitset -------------------------------------------------------

TEST(ItemBitsetTest, SetTestClearCount) {
  ItemBitset bits;
  EXPECT_FALSE(bits.any());
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(63);
  bits.set(64);
  bits.set(ItemBitset::kBits - 1);
  EXPECT_TRUE(bits.any());
  EXPECT_EQ(bits.count(), 4u);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(ItemBitset::kBits - 1));
  EXPECT_FALSE(bits.test(1));
  bits.clear(63);
  EXPECT_FALSE(bits.test(63));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset();
  EXPECT_FALSE(bits.any());
}

TEST(ItemBitsetTest, OutOfRangeBitThrows) {
  ItemBitset bits;
  EXPECT_THROW(bits.set(ItemBitset::kBits), ContractViolation);
  EXPECT_THROW(bits.test(ItemBitset::kBits), ContractViolation);
}

TEST(ItemBitsetTest, SubsetAcrossWordBoundaries) {
  ItemBitset small;
  ItemBitset big;
  for (std::size_t bit : {3u, 64u, 130u, 255u}) {
    big.set(bit);
  }
  EXPECT_TRUE(small.is_subset_of(big));  // empty set
  small.set(64);
  small.set(255);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  small.set(65);
  EXPECT_FALSE(small.is_subset_of(big));
}

TEST(ItemBitsetTest, ForEachSetAscending) {
  ItemBitset bits;
  const std::vector<std::size_t> expected = {0, 5, 63, 64, 127, 128, 254};
  for (std::size_t bit : expected) {
    bits.set(bit);
  }
  std::vector<std::size_t> seen;
  bits.for_each_set([&](std::size_t bit) { seen.push_back(bit); });
  EXPECT_EQ(seen, expected);
}

// ---- DynamicBitset ----------------------------------------------------

TEST(DynamicBitsetTest, GrowsOnSetAndCounts) {
  DynamicBitset bits;
  EXPECT_EQ(bits.count(), 0u);
  EXPECT_FALSE(bits.test(1000));  // out of width == unset
  bits.set(3);
  bits.set(200);
  EXPECT_TRUE(bits.test(3));
  EXPECT_TRUE(bits.test(200));
  EXPECT_FALSE(bits.test(4));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(DynamicBitsetTest, AndOperationsClampWidth) {
  DynamicBitset a;
  DynamicBitset b;
  a.set(1);
  a.set(70);
  a.set(500);  // beyond b's width; must not survive an AND
  b.set(1);
  b.set(70);
  b.set(90);
  EXPECT_EQ(DynamicBitset::and_count(a, b), 2u);
  EXPECT_EQ(DynamicBitset::and_count(b, a), 2u);
  const DynamicBitset both = DynamicBitset::and_of(a, b);
  EXPECT_TRUE(both.test(1));
  EXPECT_TRUE(both.test(70));
  EXPECT_FALSE(both.test(500));
  a.and_with(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_FALSE(a.test(500));
}

TEST(DynamicBitsetTest, OrWithGrowsAndForEachStops) {
  DynamicBitset a;
  DynamicBitset b;
  a.set(2);
  b.set(300);
  a.or_with(b);
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(300));
  std::vector<std::size_t> seen;
  a.for_each_set([&](std::size_t bit) {
    seen.push_back(bit);
    return true;  // stop after the first set bit
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{2}));
}

// ---- dense item encoding ----------------------------------------------

TEST(ItemEncodingTest, BodyAndLabelSlots) {
  EXPECT_EQ(item_bit(body_item(0)), 0u);
  EXPECT_EQ(item_bit(body_item(100)), 100u);
  EXPECT_EQ(item_bit(label_item(0)), kItemBodyBits);
  EXPECT_EQ(item_bit(label_item(100)), kItemBodyBits + 100);
  // Body and label slots never collide.
  EXPECT_NE(item_bit(body_item(7)), item_bit(label_item(7)));
  // Outside the fixed universe.
  EXPECT_EQ(item_bit(body_item(static_cast<SubcategoryId>(kItemBodyBits))),
            kNoItemBit);
  EXPECT_EQ(item_bit(label_item(static_cast<SubcategoryId>(kItemBodyBits))),
            kNoItemBit);
}

TEST(ItemEncodingTest, TryEncodeBitset) {
  ItemBitset bits;
  EXPECT_TRUE(try_encode_bitset({body_item(1), label_item(2)}, &bits));
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_TRUE(bits.test(1));
  EXPECT_TRUE(bits.test(kItemBodyBits + 2));
  EXPECT_FALSE(try_encode_bitset(
      {body_item(1), body_item(static_cast<SubcategoryId>(kItemBodyBits))},
      &bits));
}

// ---- randomized differential checks -----------------------------------

// Random transactions over a mixed universe: in-universe body items,
// label items, and (when `exotic` is set) items past the bitset width to
// force the naive fallbacks.
TransactionDb random_db(Rng& rng, std::size_t transactions, bool exotic) {
  TransactionDb db;
  for (std::size_t t = 0; t < transactions; ++t) {
    Itemset items;
    const std::size_t n =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    for (std::size_t i = 0; i < n; ++i) {
      const auto subcat =
          static_cast<SubcategoryId>(rng.uniform_int(0, 11));
      switch (rng.uniform_int(0, exotic ? 3 : 2)) {
        case 0:
        case 1:
          items.push_back(body_item(subcat));
          break;
        case 2:
          items.push_back(label_item(subcat));
          break;
        default:
          // Past kItemBodyBits: unencodable, exercises fallbacks.
          items.push_back(body_item(
              static_cast<SubcategoryId>(kItemBodyBits + subcat)));
          break;
      }
    }
    db.add(items);
  }
  return db;
}

Itemset random_query(Rng& rng, bool exotic) {
  Itemset items;
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 4));
  for (std::size_t i = 0; i < n; ++i) {
    const auto subcat = static_cast<SubcategoryId>(rng.uniform_int(0, 13));
    if (exotic && rng.uniform_int(0, 5) == 0) {
      items.push_back(
          body_item(static_cast<SubcategoryId>(kItemBodyBits + subcat)));
    } else if (rng.uniform_int(0, 2) == 0) {
      items.push_back(label_item(subcat));
    } else {
      items.push_back(body_item(subcat));
    }
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

TEST(DifferentialTest, VerticalSupportMatchesNaive) {
  Rng rng(0xb175e7u);
  for (int round = 0; round < 30; ++round) {
    const bool exotic = round % 2 == 0;
    const TransactionDb db = random_db(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 40)), exotic);
    for (int q = 0; q < 50; ++q) {
      const Itemset query = random_query(rng, exotic);
      EXPECT_EQ(db.absolute_support(query),
                db.absolute_support_naive(query))
          << "round " << round << " query " << itemset_to_string(query);
    }
  }
}

TEST(DifferentialTest, VerticalIndexSurvivesCopyAndMutation) {
  Rng rng(0xc0b1e5u);
  TransactionDb db = random_db(rng, 25, /*exotic=*/false);
  const Itemset query = {body_item(1), body_item(2)};
  const std::size_t before = db.absolute_support(query);  // builds index
  EXPECT_EQ(before, db.absolute_support_naive(query));
  TransactionDb copy = db;  // copy drops the cached index
  copy.add({body_item(1), body_item(2)});
  EXPECT_EQ(copy.absolute_support(query), before + 1);
  EXPECT_EQ(db.absolute_support(query), before);  // original unaffected
  db.add({body_item(1), body_item(2), body_item(3)});  // invalidates index
  EXPECT_EQ(db.absolute_support(query), before + 1);
  EXPECT_EQ(db.absolute_support(query), db.absolute_support_naive(query));
}

TEST(DifferentialTest, AprioriMatchesReferenceAndFpGrowth) {
  Rng rng(0xa9110fu);
  for (int round = 0; round < 12; ++round) {
    const bool exotic = round % 3 == 0;
    const TransactionDb db = random_db(
        rng, static_cast<std::size_t>(rng.uniform_int(4, 30)), exotic);
    MiningOptions options;
    options.min_support =
        static_cast<double>(rng.uniform_int(5, 30)) / 100.0;
    options.max_itemset_size =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    const FrequentSet fast = apriori(db, options);
    const FrequentSet reference = apriori_reference(db, options);
    // The vertical fast path must reproduce the reference bit-for-bit,
    // order included.
    ASSERT_EQ(fast.size(), reference.size()) << "round " << round;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast.itemsets()[i].items, reference.itemsets()[i].items);
      EXPECT_EQ(fast.itemsets()[i].count, reference.itemsets()[i].count);
    }
    // Cross-algorithm check (canonical order).
    const auto a = sorted_by_itemset(fast.itemsets());
    const auto f = sorted_by_itemset(fpgrowth(db, options).itemsets());
    ASSERT_EQ(a.size(), f.size()) << "round " << round;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].items, f[i].items);
      EXPECT_EQ(a[i].count, f[i].count);
    }
  }
}

TEST(DifferentialTest, BestMatchMatchesNaive) {
  Rng rng(0xbe57a7c4u);
  for (int round = 0; round < 10; ++round) {
    const bool exotic = round % 2 == 1;
    const TransactionDb db = random_db(
        rng, static_cast<std::size_t>(rng.uniform_int(10, 60)), exotic);
    RuleOptions options;
    options.mining.min_support = 0.05;
    options.min_confidence = 0.05;
    options.min_label_count = 1;
    options.min_rule_hits = 1;
    const RuleSet rules = mine_rules(db, options);
    for (int q = 0; q < 60; ++q) {
      const Itemset observed = random_query(rng, exotic);
      const Rule* naive = rules.best_match_naive(observed);
      const Rule* fast = rules.best_match(observed);
      // Pointer equality: ties must resolve to the *same* rule.
      EXPECT_EQ(fast, naive)
          << "round " << round << " observed "
          << itemset_to_string(observed);
      ItemBitset bits;
      if (try_encode_bitset(observed, &bits)) {
        EXPECT_EQ(rules.best_match(bits), naive);
      }
    }
  }
}

TEST(RuleSetTest, EmptyBodyRuleMatchesEmptyWindow) {
  // An empty-body rule (possible in synthetic inputs) must match any
  // window, including the empty one, on every path.
  Rule rule;
  rule.heads = {3};
  rule.confidence = 0.5;
  rule.support = 0.1;
  const RuleSet rules({rule});
  EXPECT_NE(rules.best_match(Itemset{}), nullptr);
  EXPECT_NE(rules.best_match(ItemBitset{}), nullptr);
  EXPECT_EQ(rules.best_match(Itemset{}), rules.best_match_naive(Itemset{}));
}

}  // namespace
}  // namespace bglpred
