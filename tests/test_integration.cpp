// End-to-end integration tests: generate both calibrated logs, run the
// full three-phase pipeline, and assert the paper's qualitative results
// hold (bands kept loose — the deterministic seed keeps them stable, but
// they must survive profile re-tuning).
#include <gtest/gtest.h>

#include "core/three_phase.hpp"
#include "mining/event_sets.hpp"
#include "simgen/generator.hpp"
#include "stats/interarrival.hpp"

namespace bglpred {
namespace {

struct ProfileCase {
  const char* name;
  Duration rulegen_window;
};

class IntegrationTest : public ::testing::TestWithParam<ProfileCase> {
 protected:
  // Fixture scale: large enough that per-fold trigger selection is
  // stable (at 0.15 the net/ios follow-up margin is one unlucky seed
  // away from the 0.85 relative cut — see StatisticalOptions).
  static constexpr double kScale = 0.25;

  static SystemProfile profile_for(const std::string& name) {
    return name == "ANL" ? SystemProfile::anl() : SystemProfile::sdsc();
  }

  // Generate + preprocess once per profile (shared across tests).
  static RasLog& preprocessed(const std::string& name,
                              Duration rulegen_window) {
    static std::map<std::string, RasLog> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
      GeneratedLog g = LogGenerator(profile_for(name)).generate(kScale);
      ThreePhaseOptions opt;
      opt.rule.rule_generation_window = rulegen_window;
      ThreePhasePredictor(opt).run_phase1(g.log);
      it = cache.emplace(name, std::move(g.log)).first;
    }
    return it->second;
  }
};

TEST_P(IntegrationTest, StatisticalPredictorInPaperBand) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  // Table-5 configuration: [5 min, 1 h].
  ThreePhaseOptions opt;
  opt.prediction.lead = 5 * kMinute;
  opt.prediction.window = kHour;
  opt.rule.rule_generation_window = param.rulegen_window;
  const CvResult cv =
      ThreePhasePredictor(opt).evaluate(log, Method::kStatistical);
  // Paper: ANL P=.5157 R=.4872; SDSC P=.2837 R=.3117. Wide bands.
  if (std::string(param.name) == "ANL") {
    EXPECT_GT(cv.macro_precision, 0.35);
    EXPECT_LT(cv.macro_precision, 0.70);
    EXPECT_GT(cv.macro_recall, 0.30);
    EXPECT_LT(cv.macro_recall, 0.70);
  } else {
    EXPECT_GT(cv.macro_precision, 0.15);
    EXPECT_LT(cv.macro_precision, 0.55);
    EXPECT_GT(cv.macro_recall, 0.10);
    EXPECT_LT(cv.macro_recall, 0.50);
  }
}

TEST_P(IntegrationTest, RulePredictorHasHighPrecisionModerateRecall) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  opt.rule.rule_generation_window = param.rulegen_window;
  const CvResult cv = ThreePhasePredictor(opt).evaluate(log, Method::kRule);
  // Paper band: precision 0.7-0.9, recall 0.22-0.55. Under coverage
  // counting on strongly bursty logs our recall runs above the band and
  // precision a notch below it (EXPERIMENTS.md discusses); the test pins
  // the qualitative region: precision clearly above chance, recall
  // moderate-to-high and bounded away from both 0 and 1.
  EXPECT_GT(cv.macro_precision, 0.45);
  EXPECT_GT(cv.macro_recall, 0.2);
  EXPECT_LT(cv.macro_recall, 0.85);
}

TEST_P(IntegrationTest, RecallRisesWithPredictionWindow) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  double prev = -1.0;
  for (const Duration w : {5 * kMinute, 30 * kMinute, 60 * kMinute}) {
    ThreePhaseOptions opt;
    opt.prediction.window = w;
    opt.rule.rule_generation_window = param.rulegen_window;
    const CvResult cv =
        ThreePhasePredictor(opt).evaluate(log, Method::kRule);
    EXPECT_GT(cv.macro_recall, prev - 0.03)  // monotone up to noise
        << "window " << w;
    prev = cv.macro_recall;
  }
}

TEST_P(IntegrationTest, MetaLearnerBoostsRecallOverBothBases) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  opt.rule.rule_generation_window = param.rulegen_window;
  const ThreePhasePredictor tpp(opt);
  const CvResult stat = tpp.evaluate(log, Method::kStatistical);
  const CvResult rule = tpp.evaluate(log, Method::kRule);
  const CvResult meta = tpp.evaluate(log, Method::kMeta);
  // The headline claim: the meta-learner's coverage beats either base.
  EXPECT_GT(meta.macro_recall, rule.macro_recall - 1e-9);
  EXPECT_GT(meta.macro_recall, stat.macro_recall - 1e-9);
  // And its precision sits at or above the weaker base's.
  EXPECT_GT(meta.macro_precision,
            std::min(stat.macro_precision, rule.macro_precision) - 0.05);
}

TEST_P(IntegrationTest, MetaBeatsNaiveBaselines) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  ThreePhaseOptions opt;
  opt.prediction.window = 30 * kMinute;
  opt.rule.rule_generation_window = param.rulegen_window;
  const ThreePhasePredictor tpp(opt);
  const CvResult meta = tpp.evaluate(log, Method::kMeta);
  const CvResult periodic = tpp.evaluate(log, Method::kPeriodic);
  EXPECT_GT(meta.macro_f1(), periodic.macro_f1());
}

TEST_P(IntegrationTest, NoPrecursorFractionInPaperRange) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  // Paper: 31%-66% (ANL) and 47%-75% (SDSC) of failures lack precursors
  // as the window ranges over 5..60 minutes. Check ordering + rough
  // magnitude at the ends.
  EventSetStats at5;
  extract_event_sets(log, 5 * kMinute, &at5);
  EventSetStats at60;
  extract_event_sets(log, 60 * kMinute, &at60);
  EXPECT_GT(at5.no_precursor_fraction(), at60.no_precursor_fraction());
  EXPECT_GT(at5.no_precursor_fraction(), 0.3);
  EXPECT_LT(at60.no_precursor_fraction(), 0.5);
}

TEST_P(IntegrationTest, FailuresClusterInTime) {
  const auto param = GetParam();
  RasLog& log = preprocessed(param.name, param.rulegen_window);
  // Figure 2: a significant share of failures follow the previous one
  // closely.
  const Ecdf cdf = fatal_gap_cdf(log);
  EXPECT_GT(cdf.eval(kHour), 0.25);
  EXPECT_GT(cdf.eval(4 * kHour), cdf.eval(kHour));
}

INSTANTIATE_TEST_SUITE_P(
    BothSystems, IntegrationTest,
    ::testing::Values(ProfileCase{"ANL", 15 * kMinute},
                      ProfileCase{"SDSC", 25 * kMinute}),
    [](const ::testing::TestParamInfo<ProfileCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bglpred
