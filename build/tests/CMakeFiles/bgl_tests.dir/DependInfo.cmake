
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bayes.cpp" "tests/CMakeFiles/bgl_tests.dir/test_bayes.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_bayes.cpp.o.d"
  "/root/repo/tests/test_bgl.cpp" "tests/CMakeFiles/bgl_tests.dir/test_bgl.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_bgl.cpp.o.d"
  "/root/repo/tests/test_common_util.cpp" "tests/CMakeFiles/bgl_tests.dir/test_common_util.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_common_util.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/bgl_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/bgl_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/bgl_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/bgl_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_job_impact.cpp" "tests/CMakeFiles/bgl_tests.dir/test_job_impact.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_job_impact.cpp.o.d"
  "/root/repo/tests/test_meta.cpp" "tests/CMakeFiles/bgl_tests.dir/test_meta.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_meta.cpp.o.d"
  "/root/repo/tests/test_mining.cpp" "tests/CMakeFiles/bgl_tests.dir/test_mining.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_mining.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/bgl_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_predictors.cpp" "tests/CMakeFiles/bgl_tests.dir/test_predictors.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_predictors.cpp.o.d"
  "/root/repo/tests/test_preprocess.cpp" "tests/CMakeFiles/bgl_tests.dir/test_preprocess.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_preprocess.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/bgl_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_raslog.cpp" "tests/CMakeFiles/bgl_tests.dir/test_raslog.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_raslog.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/bgl_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_simgen.cpp" "tests/CMakeFiles/bgl_tests.dir/test_simgen.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_simgen.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/bgl_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_taxonomy.cpp" "tests/CMakeFiles/bgl_tests.dir/test_taxonomy.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_taxonomy.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/bgl_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/bgl_tests.dir/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/bgl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bgl_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/bgl_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bgl_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/bgl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bgl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/bgl_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/bgl_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
