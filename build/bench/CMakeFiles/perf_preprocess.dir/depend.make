# Empty dependencies file for perf_preprocess.
# This may be replaced when dependencies are built.
