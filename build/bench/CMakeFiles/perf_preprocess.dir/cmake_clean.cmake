file(REMOVE_RECURSE
  "CMakeFiles/perf_preprocess.dir/perf_preprocess.cpp.o"
  "CMakeFiles/perf_preprocess.dir/perf_preprocess.cpp.o.d"
  "perf_preprocess"
  "perf_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
