file(REMOVE_RECURSE
  "CMakeFiles/ablation_support_confidence.dir/ablation_support_confidence.cpp.o"
  "CMakeFiles/ablation_support_confidence.dir/ablation_support_confidence.cpp.o.d"
  "ablation_support_confidence"
  "ablation_support_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_support_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
