# Empty dependencies file for ablation_support_confidence.
# This may be replaced when dependencies are built.
