file(REMOVE_RECURSE
  "CMakeFiles/fig4_rule_based.dir/fig4_rule_based.cpp.o"
  "CMakeFiles/fig4_rule_based.dir/fig4_rule_based.cpp.o.d"
  "fig4_rule_based"
  "fig4_rule_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rule_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
