# Empty dependencies file for fig4_rule_based.
# This may be replaced when dependencies are built.
