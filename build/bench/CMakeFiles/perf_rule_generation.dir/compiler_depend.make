# Empty compiler generated dependencies file for perf_rule_generation.
# This may be replaced when dependencies are built.
