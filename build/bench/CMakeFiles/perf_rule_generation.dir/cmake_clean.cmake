file(REMOVE_RECURSE
  "CMakeFiles/perf_rule_generation.dir/perf_rule_generation.cpp.o"
  "CMakeFiles/perf_rule_generation.dir/perf_rule_generation.cpp.o.d"
  "perf_rule_generation"
  "perf_rule_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_rule_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
