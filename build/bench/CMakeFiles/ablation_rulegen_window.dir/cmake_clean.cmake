file(REMOVE_RECURSE
  "CMakeFiles/ablation_rulegen_window.dir/ablation_rulegen_window.cpp.o"
  "CMakeFiles/ablation_rulegen_window.dir/ablation_rulegen_window.cpp.o.d"
  "ablation_rulegen_window"
  "ablation_rulegen_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rulegen_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
