# Empty dependencies file for ablation_rulegen_window.
# This may be replaced when dependencies are built.
