# Empty compiler generated dependencies file for table4_fatal_distribution.
# This may be replaced when dependencies are built.
