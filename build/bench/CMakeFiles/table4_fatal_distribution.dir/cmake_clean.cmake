file(REMOVE_RECURSE
  "CMakeFiles/table4_fatal_distribution.dir/table4_fatal_distribution.cpp.o"
  "CMakeFiles/table4_fatal_distribution.dir/table4_fatal_distribution.cpp.o.d"
  "table4_fatal_distribution"
  "table4_fatal_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fatal_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
