# Empty dependencies file for fig2_failure_cdf.
# This may be replaced when dependencies are built.
