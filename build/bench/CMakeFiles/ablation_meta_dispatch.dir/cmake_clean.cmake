file(REMOVE_RECURSE
  "CMakeFiles/ablation_meta_dispatch.dir/ablation_meta_dispatch.cpp.o"
  "CMakeFiles/ablation_meta_dispatch.dir/ablation_meta_dispatch.cpp.o.d"
  "ablation_meta_dispatch"
  "ablation_meta_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_meta_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
