file(REMOVE_RECURSE
  "CMakeFiles/ablation_rule_pruning.dir/ablation_rule_pruning.cpp.o"
  "CMakeFiles/ablation_rule_pruning.dir/ablation_rule_pruning.cpp.o.d"
  "ablation_rule_pruning"
  "ablation_rule_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rule_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
