# Empty compiler generated dependencies file for ablation_rule_pruning.
# This may be replaced when dependencies are built.
