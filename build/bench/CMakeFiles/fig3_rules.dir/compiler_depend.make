# Empty compiler generated dependencies file for fig3_rules.
# This may be replaced when dependencies are built.
