file(REMOVE_RECURSE
  "CMakeFiles/fig3_rules.dir/fig3_rules.cpp.o"
  "CMakeFiles/fig3_rules.dir/fig3_rules.cpp.o.d"
  "fig3_rules"
  "fig3_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
