file(REMOVE_RECURSE
  "CMakeFiles/table3_taxonomy.dir/table3_taxonomy.cpp.o"
  "CMakeFiles/table3_taxonomy.dir/table3_taxonomy.cpp.o.d"
  "table3_taxonomy"
  "table3_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
