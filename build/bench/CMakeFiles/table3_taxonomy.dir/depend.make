# Empty dependencies file for table3_taxonomy.
# This may be replaced when dependencies are built.
