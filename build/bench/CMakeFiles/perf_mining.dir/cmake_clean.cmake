file(REMOVE_RECURSE
  "CMakeFiles/perf_mining.dir/perf_mining.cpp.o"
  "CMakeFiles/perf_mining.dir/perf_mining.cpp.o.d"
  "perf_mining"
  "perf_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
