# Empty compiler generated dependencies file for perf_mining.
# This may be replaced when dependencies are built.
