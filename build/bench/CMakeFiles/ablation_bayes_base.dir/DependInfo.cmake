
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_bayes_base.cpp" "bench/CMakeFiles/ablation_bayes_base.dir/ablation_bayes_base.cpp.o" "gcc" "bench/CMakeFiles/ablation_bayes_base.dir/ablation_bayes_base.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bgl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/bgl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bgl_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/bgl_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/bgl_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/bgl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bgl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/bgl_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/bgl_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
