# Empty compiler generated dependencies file for ablation_bayes_base.
# This may be replaced when dependencies are built.
