file(REMOVE_RECURSE
  "CMakeFiles/ablation_bayes_base.dir/ablation_bayes_base.cpp.o"
  "CMakeFiles/ablation_bayes_base.dir/ablation_bayes_base.cpp.o.d"
  "ablation_bayes_base"
  "ablation_bayes_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bayes_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
