file(REMOVE_RECURSE
  "CMakeFiles/report_lead_time.dir/report_lead_time.cpp.o"
  "CMakeFiles/report_lead_time.dir/report_lead_time.cpp.o.d"
  "report_lead_time"
  "report_lead_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_lead_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
