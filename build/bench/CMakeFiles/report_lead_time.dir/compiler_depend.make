# Empty compiler generated dependencies file for report_lead_time.
# This may be replaced when dependencies are built.
