file(REMOVE_RECURSE
  "CMakeFiles/fig5_meta_learning.dir/fig5_meta_learning.cpp.o"
  "CMakeFiles/fig5_meta_learning.dir/fig5_meta_learning.cpp.o.d"
  "fig5_meta_learning"
  "fig5_meta_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_meta_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
