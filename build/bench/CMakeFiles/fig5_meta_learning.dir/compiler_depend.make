# Empty compiler generated dependencies file for fig5_meta_learning.
# This may be replaced when dependencies are built.
