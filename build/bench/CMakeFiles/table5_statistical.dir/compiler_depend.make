# Empty compiler generated dependencies file for table5_statistical.
# This may be replaced when dependencies are built.
