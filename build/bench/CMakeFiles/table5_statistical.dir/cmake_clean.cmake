file(REMOVE_RECURSE
  "CMakeFiles/table5_statistical.dir/table5_statistical.cpp.o"
  "CMakeFiles/table5_statistical.dir/table5_statistical.cpp.o.d"
  "table5_statistical"
  "table5_statistical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
