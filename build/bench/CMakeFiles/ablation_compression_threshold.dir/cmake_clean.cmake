file(REMOVE_RECURSE
  "CMakeFiles/ablation_compression_threshold.dir/ablation_compression_threshold.cpp.o"
  "CMakeFiles/ablation_compression_threshold.dir/ablation_compression_threshold.cpp.o.d"
  "ablation_compression_threshold"
  "ablation_compression_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compression_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
