# Empty compiler generated dependencies file for ablation_compression_threshold.
# This may be replaced when dependencies are built.
