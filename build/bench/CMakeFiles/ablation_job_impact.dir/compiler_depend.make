# Empty compiler generated dependencies file for ablation_job_impact.
# This may be replaced when dependencies are built.
