file(REMOVE_RECURSE
  "CMakeFiles/ablation_job_impact.dir/ablation_job_impact.cpp.o"
  "CMakeFiles/ablation_job_impact.dir/ablation_job_impact.cpp.o.d"
  "ablation_job_impact"
  "ablation_job_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_job_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
