file(REMOVE_RECURSE
  "CMakeFiles/bglpredict.dir/bglpredict_cli.cpp.o"
  "CMakeFiles/bglpredict.dir/bglpredict_cli.cpp.o.d"
  "bglpredict"
  "bglpredict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bglpredict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
