# Empty compiler generated dependencies file for bglpredict.
# This may be replaced when dependencies are built.
