file(REMOVE_RECURSE
  "CMakeFiles/bgl_meta.dir/meta_learner.cpp.o"
  "CMakeFiles/bgl_meta.dir/meta_learner.cpp.o.d"
  "libbgl_meta.a"
  "libbgl_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
