# Empty compiler generated dependencies file for bgl_meta.
# This may be replaced when dependencies are built.
