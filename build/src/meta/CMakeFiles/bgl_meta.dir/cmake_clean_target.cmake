file(REMOVE_RECURSE
  "libbgl_meta.a"
)
