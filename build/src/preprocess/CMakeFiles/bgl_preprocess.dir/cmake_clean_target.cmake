file(REMOVE_RECURSE
  "libbgl_preprocess.a"
)
