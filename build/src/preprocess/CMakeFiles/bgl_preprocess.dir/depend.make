# Empty dependencies file for bgl_preprocess.
# This may be replaced when dependencies are built.
