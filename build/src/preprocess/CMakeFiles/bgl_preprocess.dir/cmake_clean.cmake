file(REMOVE_RECURSE
  "CMakeFiles/bgl_preprocess.dir/compressors.cpp.o"
  "CMakeFiles/bgl_preprocess.dir/compressors.cpp.o.d"
  "CMakeFiles/bgl_preprocess.dir/pipeline.cpp.o"
  "CMakeFiles/bgl_preprocess.dir/pipeline.cpp.o.d"
  "libbgl_preprocess.a"
  "libbgl_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
