# Empty dependencies file for bgl_stats.
# This may be replaced when dependencies are built.
