
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/bgl_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/bgl_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/bgl_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/bgl_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/bgl_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/bgl_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/interarrival.cpp" "src/stats/CMakeFiles/bgl_stats.dir/interarrival.cpp.o" "gcc" "src/stats/CMakeFiles/bgl_stats.dir/interarrival.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/stats/CMakeFiles/bgl_stats.dir/summary.cpp.o" "gcc" "src/stats/CMakeFiles/bgl_stats.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
