file(REMOVE_RECURSE
  "CMakeFiles/bgl_stats.dir/correlation.cpp.o"
  "CMakeFiles/bgl_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/bgl_stats.dir/ecdf.cpp.o"
  "CMakeFiles/bgl_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/bgl_stats.dir/histogram.cpp.o"
  "CMakeFiles/bgl_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/bgl_stats.dir/interarrival.cpp.o"
  "CMakeFiles/bgl_stats.dir/interarrival.cpp.o.d"
  "CMakeFiles/bgl_stats.dir/summary.cpp.o"
  "CMakeFiles/bgl_stats.dir/summary.cpp.o.d"
  "libbgl_stats.a"
  "libbgl_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
