file(REMOVE_RECURSE
  "libbgl_stats.a"
)
