file(REMOVE_RECURSE
  "libbgl_taxonomy.a"
)
