file(REMOVE_RECURSE
  "CMakeFiles/bgl_taxonomy.dir/catalog.cpp.o"
  "CMakeFiles/bgl_taxonomy.dir/catalog.cpp.o.d"
  "CMakeFiles/bgl_taxonomy.dir/category.cpp.o"
  "CMakeFiles/bgl_taxonomy.dir/category.cpp.o.d"
  "CMakeFiles/bgl_taxonomy.dir/classifier.cpp.o"
  "CMakeFiles/bgl_taxonomy.dir/classifier.cpp.o.d"
  "CMakeFiles/bgl_taxonomy.dir/query.cpp.o"
  "CMakeFiles/bgl_taxonomy.dir/query.cpp.o.d"
  "libbgl_taxonomy.a"
  "libbgl_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
