
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taxonomy/catalog.cpp" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/catalog.cpp.o" "gcc" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/catalog.cpp.o.d"
  "/root/repo/src/taxonomy/category.cpp" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/category.cpp.o" "gcc" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/category.cpp.o.d"
  "/root/repo/src/taxonomy/classifier.cpp" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/classifier.cpp.o" "gcc" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/classifier.cpp.o.d"
  "/root/repo/src/taxonomy/query.cpp" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/query.cpp.o" "gcc" "src/taxonomy/CMakeFiles/bgl_taxonomy.dir/query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
