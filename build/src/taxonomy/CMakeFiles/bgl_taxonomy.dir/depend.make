# Empty dependencies file for bgl_taxonomy.
# This may be replaced when dependencies are built.
