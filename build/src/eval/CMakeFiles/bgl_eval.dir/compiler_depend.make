# Empty compiler generated dependencies file for bgl_eval.
# This may be replaced when dependencies are built.
