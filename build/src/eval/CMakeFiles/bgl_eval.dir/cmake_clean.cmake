file(REMOVE_RECURSE
  "CMakeFiles/bgl_eval.dir/cross_validation.cpp.o"
  "CMakeFiles/bgl_eval.dir/cross_validation.cpp.o.d"
  "CMakeFiles/bgl_eval.dir/job_impact.cpp.o"
  "CMakeFiles/bgl_eval.dir/job_impact.cpp.o.d"
  "CMakeFiles/bgl_eval.dir/lead_time.cpp.o"
  "CMakeFiles/bgl_eval.dir/lead_time.cpp.o.d"
  "CMakeFiles/bgl_eval.dir/matcher.cpp.o"
  "CMakeFiles/bgl_eval.dir/matcher.cpp.o.d"
  "libbgl_eval.a"
  "libbgl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
