file(REMOVE_RECURSE
  "libbgl_eval.a"
)
