
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/cross_validation.cpp" "src/eval/CMakeFiles/bgl_eval.dir/cross_validation.cpp.o" "gcc" "src/eval/CMakeFiles/bgl_eval.dir/cross_validation.cpp.o.d"
  "/root/repo/src/eval/job_impact.cpp" "src/eval/CMakeFiles/bgl_eval.dir/job_impact.cpp.o" "gcc" "src/eval/CMakeFiles/bgl_eval.dir/job_impact.cpp.o.d"
  "/root/repo/src/eval/lead_time.cpp" "src/eval/CMakeFiles/bgl_eval.dir/lead_time.cpp.o" "gcc" "src/eval/CMakeFiles/bgl_eval.dir/lead_time.cpp.o.d"
  "/root/repo/src/eval/matcher.cpp" "src/eval/CMakeFiles/bgl_eval.dir/matcher.cpp.o" "gcc" "src/eval/CMakeFiles/bgl_eval.dir/matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/predict/CMakeFiles/bgl_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/bgl_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/mining/CMakeFiles/bgl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bgl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
