file(REMOVE_RECURSE
  "libbgl_simgen.a"
)
