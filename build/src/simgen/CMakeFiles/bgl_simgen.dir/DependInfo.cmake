
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simgen/chains.cpp" "src/simgen/CMakeFiles/bgl_simgen.dir/chains.cpp.o" "gcc" "src/simgen/CMakeFiles/bgl_simgen.dir/chains.cpp.o.d"
  "/root/repo/src/simgen/generator.cpp" "src/simgen/CMakeFiles/bgl_simgen.dir/generator.cpp.o" "gcc" "src/simgen/CMakeFiles/bgl_simgen.dir/generator.cpp.o.d"
  "/root/repo/src/simgen/profile.cpp" "src/simgen/CMakeFiles/bgl_simgen.dir/profile.cpp.o" "gcc" "src/simgen/CMakeFiles/bgl_simgen.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
