file(REMOVE_RECURSE
  "CMakeFiles/bgl_simgen.dir/chains.cpp.o"
  "CMakeFiles/bgl_simgen.dir/chains.cpp.o.d"
  "CMakeFiles/bgl_simgen.dir/generator.cpp.o"
  "CMakeFiles/bgl_simgen.dir/generator.cpp.o.d"
  "CMakeFiles/bgl_simgen.dir/profile.cpp.o"
  "CMakeFiles/bgl_simgen.dir/profile.cpp.o.d"
  "libbgl_simgen.a"
  "libbgl_simgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_simgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
