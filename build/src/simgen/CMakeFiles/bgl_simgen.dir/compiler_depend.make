# Empty compiler generated dependencies file for bgl_simgen.
# This may be replaced when dependencies are built.
