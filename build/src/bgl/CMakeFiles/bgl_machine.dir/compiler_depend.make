# Empty compiler generated dependencies file for bgl_machine.
# This may be replaced when dependencies are built.
