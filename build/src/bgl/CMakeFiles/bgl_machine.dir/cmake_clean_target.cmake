file(REMOVE_RECURSE
  "libbgl_machine.a"
)
