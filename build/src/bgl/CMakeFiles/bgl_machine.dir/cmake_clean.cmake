file(REMOVE_RECURSE
  "CMakeFiles/bgl_machine.dir/location.cpp.o"
  "CMakeFiles/bgl_machine.dir/location.cpp.o.d"
  "CMakeFiles/bgl_machine.dir/scheduler.cpp.o"
  "CMakeFiles/bgl_machine.dir/scheduler.cpp.o.d"
  "CMakeFiles/bgl_machine.dir/topology.cpp.o"
  "CMakeFiles/bgl_machine.dir/topology.cpp.o.d"
  "CMakeFiles/bgl_machine.dir/torus.cpp.o"
  "CMakeFiles/bgl_machine.dir/torus.cpp.o.d"
  "libbgl_machine.a"
  "libbgl_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
