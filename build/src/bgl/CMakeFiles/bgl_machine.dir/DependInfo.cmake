
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgl/location.cpp" "src/bgl/CMakeFiles/bgl_machine.dir/location.cpp.o" "gcc" "src/bgl/CMakeFiles/bgl_machine.dir/location.cpp.o.d"
  "/root/repo/src/bgl/scheduler.cpp" "src/bgl/CMakeFiles/bgl_machine.dir/scheduler.cpp.o" "gcc" "src/bgl/CMakeFiles/bgl_machine.dir/scheduler.cpp.o.d"
  "/root/repo/src/bgl/topology.cpp" "src/bgl/CMakeFiles/bgl_machine.dir/topology.cpp.o" "gcc" "src/bgl/CMakeFiles/bgl_machine.dir/topology.cpp.o.d"
  "/root/repo/src/bgl/torus.cpp" "src/bgl/CMakeFiles/bgl_machine.dir/torus.cpp.o" "gcc" "src/bgl/CMakeFiles/bgl_machine.dir/torus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
