file(REMOVE_RECURSE
  "CMakeFiles/bgl_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/bgl_parallel.dir/thread_pool.cpp.o.d"
  "libbgl_parallel.a"
  "libbgl_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
