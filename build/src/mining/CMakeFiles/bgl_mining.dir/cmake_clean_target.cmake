file(REMOVE_RECURSE
  "libbgl_mining.a"
)
