# Empty dependencies file for bgl_mining.
# This may be replaced when dependencies are built.
