file(REMOVE_RECURSE
  "CMakeFiles/bgl_mining.dir/apriori.cpp.o"
  "CMakeFiles/bgl_mining.dir/apriori.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/event_sets.cpp.o"
  "CMakeFiles/bgl_mining.dir/event_sets.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/fpgrowth.cpp.o"
  "CMakeFiles/bgl_mining.dir/fpgrowth.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/frequent.cpp.o"
  "CMakeFiles/bgl_mining.dir/frequent.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/items.cpp.o"
  "CMakeFiles/bgl_mining.dir/items.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/pruning.cpp.o"
  "CMakeFiles/bgl_mining.dir/pruning.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/rules.cpp.o"
  "CMakeFiles/bgl_mining.dir/rules.cpp.o.d"
  "CMakeFiles/bgl_mining.dir/transaction.cpp.o"
  "CMakeFiles/bgl_mining.dir/transaction.cpp.o.d"
  "libbgl_mining.a"
  "libbgl_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
