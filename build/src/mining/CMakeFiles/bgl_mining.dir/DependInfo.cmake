
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/apriori.cpp" "src/mining/CMakeFiles/bgl_mining.dir/apriori.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/apriori.cpp.o.d"
  "/root/repo/src/mining/event_sets.cpp" "src/mining/CMakeFiles/bgl_mining.dir/event_sets.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/event_sets.cpp.o.d"
  "/root/repo/src/mining/fpgrowth.cpp" "src/mining/CMakeFiles/bgl_mining.dir/fpgrowth.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/fpgrowth.cpp.o.d"
  "/root/repo/src/mining/frequent.cpp" "src/mining/CMakeFiles/bgl_mining.dir/frequent.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/frequent.cpp.o.d"
  "/root/repo/src/mining/items.cpp" "src/mining/CMakeFiles/bgl_mining.dir/items.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/items.cpp.o.d"
  "/root/repo/src/mining/pruning.cpp" "src/mining/CMakeFiles/bgl_mining.dir/pruning.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/pruning.cpp.o.d"
  "/root/repo/src/mining/rules.cpp" "src/mining/CMakeFiles/bgl_mining.dir/rules.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/rules.cpp.o.d"
  "/root/repo/src/mining/transaction.cpp" "src/mining/CMakeFiles/bgl_mining.dir/transaction.cpp.o" "gcc" "src/mining/CMakeFiles/bgl_mining.dir/transaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
