file(REMOVE_RECURSE
  "CMakeFiles/bgl_core.dir/online.cpp.o"
  "CMakeFiles/bgl_core.dir/online.cpp.o.d"
  "CMakeFiles/bgl_core.dir/three_phase.cpp.o"
  "CMakeFiles/bgl_core.dir/three_phase.cpp.o.d"
  "libbgl_core.a"
  "libbgl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
