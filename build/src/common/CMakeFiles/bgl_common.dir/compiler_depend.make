# Empty compiler generated dependencies file for bgl_common.
# This may be replaced when dependencies are built.
