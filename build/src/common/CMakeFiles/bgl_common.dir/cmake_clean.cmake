file(REMOVE_RECURSE
  "CMakeFiles/bgl_common.dir/cli.cpp.o"
  "CMakeFiles/bgl_common.dir/cli.cpp.o.d"
  "CMakeFiles/bgl_common.dir/csv.cpp.o"
  "CMakeFiles/bgl_common.dir/csv.cpp.o.d"
  "CMakeFiles/bgl_common.dir/rng.cpp.o"
  "CMakeFiles/bgl_common.dir/rng.cpp.o.d"
  "CMakeFiles/bgl_common.dir/string_pool.cpp.o"
  "CMakeFiles/bgl_common.dir/string_pool.cpp.o.d"
  "CMakeFiles/bgl_common.dir/table.cpp.o"
  "CMakeFiles/bgl_common.dir/table.cpp.o.d"
  "CMakeFiles/bgl_common.dir/time.cpp.o"
  "CMakeFiles/bgl_common.dir/time.cpp.o.d"
  "libbgl_common.a"
  "libbgl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
