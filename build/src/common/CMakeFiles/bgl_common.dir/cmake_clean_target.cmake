file(REMOVE_RECURSE
  "libbgl_common.a"
)
