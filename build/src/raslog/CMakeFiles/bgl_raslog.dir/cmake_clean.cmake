file(REMOVE_RECURSE
  "CMakeFiles/bgl_raslog.dir/binary_io.cpp.o"
  "CMakeFiles/bgl_raslog.dir/binary_io.cpp.o.d"
  "CMakeFiles/bgl_raslog.dir/facility.cpp.o"
  "CMakeFiles/bgl_raslog.dir/facility.cpp.o.d"
  "CMakeFiles/bgl_raslog.dir/io.cpp.o"
  "CMakeFiles/bgl_raslog.dir/io.cpp.o.d"
  "CMakeFiles/bgl_raslog.dir/log.cpp.o"
  "CMakeFiles/bgl_raslog.dir/log.cpp.o.d"
  "CMakeFiles/bgl_raslog.dir/record.cpp.o"
  "CMakeFiles/bgl_raslog.dir/record.cpp.o.d"
  "CMakeFiles/bgl_raslog.dir/severity.cpp.o"
  "CMakeFiles/bgl_raslog.dir/severity.cpp.o.d"
  "libbgl_raslog.a"
  "libbgl_raslog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_raslog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
