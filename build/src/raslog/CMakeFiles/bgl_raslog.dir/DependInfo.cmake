
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raslog/binary_io.cpp" "src/raslog/CMakeFiles/bgl_raslog.dir/binary_io.cpp.o" "gcc" "src/raslog/CMakeFiles/bgl_raslog.dir/binary_io.cpp.o.d"
  "/root/repo/src/raslog/facility.cpp" "src/raslog/CMakeFiles/bgl_raslog.dir/facility.cpp.o" "gcc" "src/raslog/CMakeFiles/bgl_raslog.dir/facility.cpp.o.d"
  "/root/repo/src/raslog/io.cpp" "src/raslog/CMakeFiles/bgl_raslog.dir/io.cpp.o" "gcc" "src/raslog/CMakeFiles/bgl_raslog.dir/io.cpp.o.d"
  "/root/repo/src/raslog/log.cpp" "src/raslog/CMakeFiles/bgl_raslog.dir/log.cpp.o" "gcc" "src/raslog/CMakeFiles/bgl_raslog.dir/log.cpp.o.d"
  "/root/repo/src/raslog/record.cpp" "src/raslog/CMakeFiles/bgl_raslog.dir/record.cpp.o" "gcc" "src/raslog/CMakeFiles/bgl_raslog.dir/record.cpp.o.d"
  "/root/repo/src/raslog/severity.cpp" "src/raslog/CMakeFiles/bgl_raslog.dir/severity.cpp.o" "gcc" "src/raslog/CMakeFiles/bgl_raslog.dir/severity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
