# Empty dependencies file for bgl_raslog.
# This may be replaced when dependencies are built.
