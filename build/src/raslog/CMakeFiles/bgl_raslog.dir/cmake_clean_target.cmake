file(REMOVE_RECURSE
  "libbgl_raslog.a"
)
