file(REMOVE_RECURSE
  "CMakeFiles/bgl_predict.dir/baselines.cpp.o"
  "CMakeFiles/bgl_predict.dir/baselines.cpp.o.d"
  "CMakeFiles/bgl_predict.dir/bayes_predictor.cpp.o"
  "CMakeFiles/bgl_predict.dir/bayes_predictor.cpp.o.d"
  "CMakeFiles/bgl_predict.dir/rule_predictor.cpp.o"
  "CMakeFiles/bgl_predict.dir/rule_predictor.cpp.o.d"
  "CMakeFiles/bgl_predict.dir/statistical_predictor.cpp.o"
  "CMakeFiles/bgl_predict.dir/statistical_predictor.cpp.o.d"
  "libbgl_predict.a"
  "libbgl_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgl_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
