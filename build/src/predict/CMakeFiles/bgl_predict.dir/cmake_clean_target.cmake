file(REMOVE_RECURSE
  "libbgl_predict.a"
)
