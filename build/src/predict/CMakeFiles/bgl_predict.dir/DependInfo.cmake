
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/baselines.cpp" "src/predict/CMakeFiles/bgl_predict.dir/baselines.cpp.o" "gcc" "src/predict/CMakeFiles/bgl_predict.dir/baselines.cpp.o.d"
  "/root/repo/src/predict/bayes_predictor.cpp" "src/predict/CMakeFiles/bgl_predict.dir/bayes_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/bgl_predict.dir/bayes_predictor.cpp.o.d"
  "/root/repo/src/predict/rule_predictor.cpp" "src/predict/CMakeFiles/bgl_predict.dir/rule_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/bgl_predict.dir/rule_predictor.cpp.o.d"
  "/root/repo/src/predict/statistical_predictor.cpp" "src/predict/CMakeFiles/bgl_predict.dir/statistical_predictor.cpp.o" "gcc" "src/predict/CMakeFiles/bgl_predict.dir/statistical_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mining/CMakeFiles/bgl_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bgl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/bgl_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/raslog/CMakeFiles/bgl_raslog.dir/DependInfo.cmake"
  "/root/repo/build/src/bgl/CMakeFiles/bgl_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bgl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
