# Empty compiler generated dependencies file for bgl_predict.
# This may be replaced when dependencies are built.
