# Sanitizer presets for the whole tree.
#
# BGL_SANITIZE is a semicolon-separated list of sanitizers, e.g.
#   -DBGL_SANITIZE=address;undefined   (memory errors + UB, combinable)
#   -DBGL_SANITIZE=thread              (data races; NOT combinable with asan)
# Flags are applied globally so every target — library, tests, benches,
# examples — runs under the same instrumentation.

set(BGL_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers to enable (address;undefined or thread)")

if(BGL_SANITIZE)
  if("thread" IN_LIST BGL_SANITIZE AND "address" IN_LIST BGL_SANITIZE)
    message(FATAL_ERROR "BGL_SANITIZE: thread and address are mutually exclusive")
  endif()
  set(_bgl_san_flags "")
  foreach(_san IN LISTS BGL_SANITIZE)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR "BGL_SANITIZE: unknown sanitizer '${_san}'")
    endif()
    list(APPEND _bgl_san_flags "-fsanitize=${_san}")
  endforeach()
  add_compile_options(${_bgl_san_flags} -fno-omit-frame-pointer -g)
  add_link_options(${_bgl_san_flags})
  # Sanitized builds are for finding bugs: keep the debug-only contract
  # checks (BGL_DCHECK / BGL_ASSERT) alive even in optimized configs.
  add_compile_definitions(BGL_ENABLE_ASSERTS)
  message(STATUS "Sanitizers enabled: ${BGL_SANITIZE}")
endif()
