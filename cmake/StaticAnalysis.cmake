# Static-analysis targets.
#
#   cmake --build build --target tidy       # clang-tidy over src/
#   cmake --build build --target repo-lint  # custom repo linter
#
# The tidy target needs clang-tidy on PATH and a compile_commands.json
# (exported unconditionally by the top-level CMakeLists). When clang-tidy
# is not installed the target still exists but reports a skip and exits 0,
# so `--target tidy` is safe to wire into scripts on any machine.

find_program(BGL_CLANG_TIDY_EXE
  NAMES clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15
        clang-tidy-14
  DOC "clang-tidy executable for the tidy target")

file(GLOB_RECURSE BGL_TIDY_SOURCES CONFIGURE_DEPENDS
  "${CMAKE_SOURCE_DIR}/src/*.cpp")

if(BGL_CLANG_TIDY_EXE)
  add_custom_target(tidy
    COMMAND ${BGL_CLANG_TIDY_EXE}
            -p ${CMAKE_BINARY_DIR}
            --quiet
            --warnings-as-errors=*
            ${BGL_TIDY_SOURCES}
    WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
    COMMENT "clang-tidy over src/ (config: .clang-tidy)"
    VERBATIM)
else()
  add_custom_target(tidy
    COMMAND ${CMAKE_COMMAND} -E echo
            "tidy: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
    COMMENT "clang-tidy unavailable"
    VERBATIM)
endif()

find_package(Python3 COMPONENTS Interpreter QUIET)
if(Python3_FOUND)
  add_custom_target(repo-lint
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/repo_lint.py
            --root ${CMAKE_SOURCE_DIR}
    COMMENT "repo_lint.py over src/ tests/ bench/ examples/ tools/"
    VERBATIM)
  # Architecture conformance (layering DAG, hot regions, drift checks);
  # also emits include_graph.{json,dot} into the build dir for CI upload.
  add_custom_target(repo-analyze
    COMMAND ${Python3_EXECUTABLE} ${CMAKE_SOURCE_DIR}/tools/repo_analyze.py
            --root ${CMAKE_SOURCE_DIR}
            --graph-out ${CMAKE_BINARY_DIR}/include-graph
    COMMENT "repo_analyze.py: layering, hot paths, cross-artifact drift"
    VERBATIM)
endif()
