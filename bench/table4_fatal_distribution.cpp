// Reproduces Table 4: "Distribution of Compressed Fatal Events" — the
// per-category counts of unique FATAL/FAILURE events after Phase-1
// preprocessing of both logs.
//
// Paper: ANL total 2823, SDSC total 2182 (rows in bench output).
//
// Usage: table4_fatal_distribution [--scale=1.0]

#include "bench_common.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  print_header("Table 4", "Distribution of compressed fatal events", scale);

  const std::size_t paper_anl[] = {762, 1173, 224, 52, 102, 482, 20, 8};
  const std::size_t paper_sdsc[] = {587, 905, 182, 25, 97, 366, 17, 3};

  const PreparedLog& anl = prepared_log("ANL", scale);
  const PreparedLog& sdsc = prepared_log("SDSC", scale);

  TextTable table;
  table.set_header({"Main Category", "ANL (paper)", "ANL (measured)",
                    "SDSC (paper)", "SDSC (measured)"});
  std::size_t anl_total = 0;
  std::size_t sdsc_total = 0;
  for (int c = 0; c < kMainCategoryCount; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    anl_total += anl.phase1.fatal_per_main[ci];
    sdsc_total += sdsc.phase1.fatal_per_main[ci];
    table.add_row(
        {to_string(static_cast<MainCategory>(c)),
         TextTable::count(
             static_cast<std::int64_t>(paper_anl[ci] * scale)),
         TextTable::count(
             static_cast<std::int64_t>(anl.phase1.fatal_per_main[ci])),
         TextTable::count(
             static_cast<std::int64_t>(paper_sdsc[ci] * scale)),
         TextTable::count(
             static_cast<std::int64_t>(sdsc.phase1.fatal_per_main[ci]))});
  }
  table.add_row({"TOTAL",
                 TextTable::count(static_cast<std::int64_t>(2823 * scale)),
                 TextTable::count(static_cast<std::int64_t>(anl_total)),
                 TextTable::count(static_cast<std::int64_t>(2182 * scale)),
                 TextTable::count(static_cast<std::int64_t>(sdsc_total))});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nPhase-1 compression detail:\n");
  TextTable detail;
  detail.set_header({"log", "raw records", "after temporal",
                     "after spatial", "compression"});
  for (const auto* p : {&anl, &sdsc}) {
    detail.add_row(
        {p == &anl ? "ANL" : "SDSC",
         TextTable::count(static_cast<std::int64_t>(p->raw_records)),
         TextTable::count(
             static_cast<std::int64_t>(p->phase1.temporal.output_records)),
         TextTable::count(
             static_cast<std::int64_t>(p->phase1.spatial.output_records)),
         TextTable::num(100.0 * (1.0 - static_cast<double>(
                                           p->phase1.unique_events) /
                                           static_cast<double>(
                                               p->raw_records)),
                        2) +
             "%"});
  }
  std::fputs(detail.render().c_str(), stdout);
  return 0;
}
