// Shared helpers for the per-table/figure bench drivers.
//
// Every driver reproduces one published artifact. The helpers here
// standardize: profile selection, scaled log generation + Phase-1
// preprocessing (cached per process), the paper-vs-measured table
// footer, and CSV export for external plotting. (The JSON-emitting
// google-benchmark main lives in bench_json.hpp — it must not be pulled
// into drivers that do not link google-benchmark.)
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/three_phase.hpp"
#include "simgen/generator.hpp"

namespace bglpred::bench {

/// The rule-generation window the paper selected per system (§3.2.2).
inline Duration rulegen_window_for(const std::string& profile_name) {
  return profile_name == "SDSC" ? 25 * kMinute : 15 * kMinute;
}

inline SystemProfile profile_by_name(const std::string& name) {
  if (name == "ANL") {
    return SystemProfile::anl();
  }
  if (name == "SDSC") {
    return SystemProfile::sdsc();
  }
  throw InvalidArgument("unknown profile: " + name +
                        " (expected ANL or SDSC)");
}

/// A generated-and-preprocessed log plus its bookkeeping.
struct PreparedLog {
  RasLog log;  // preprocessed unique-event stream
  GroundTruth truth;
  TimeSpan span;
  PreprocessStats phase1;
  std::size_t raw_records = 0;
};

/// Generates and preprocesses a profile at the given scale, caching per
/// (profile, scale) so multi-section benches pay once.
inline const PreparedLog& prepared_log(const std::string& profile_name,
                                       double scale) {
  static std::map<std::string, PreparedLog> cache;
  const std::string key = profile_name + "@" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    GeneratedLog g =  // repo-lint: allow(simgen-materialize)
        LogGenerator(profile_by_name(profile_name)).generate(scale);
    PreparedLog prepared;
    prepared.raw_records = g.log.size();
    prepared.truth = std::move(g.truth);
    prepared.span = g.span;
    ThreePhaseOptions opt;
    prepared.phase1 = ThreePhasePredictor(opt).run_phase1(g.log);
    prepared.log = std::move(g.log);
    it = cache.emplace(key, std::move(prepared)).first;
  }
  return it->second;
}

/// Standard bench header naming the artifact reproduced.
inline void print_header(const char* artifact, const char* description,
                         double scale) {
  std::printf("=== %s — %s ===\n", artifact, description);
  std::printf("(synthetic calibrated logs, scale %.2f of the published "
              "collection period; see DESIGN.md §2)\n\n",
              scale);
}

/// Builds the ThreePhaseOptions used by the paper's evaluation for a
/// given profile and prediction window.
inline ThreePhaseOptions paper_options(const std::string& profile_name,
                                       Duration prediction_window,
                                       Duration lead = 0) {
  ThreePhaseOptions opt;
  opt.prediction.window = prediction_window;
  opt.prediction.lead = lead;
  opt.rule.rule_generation_window = rulegen_window_for(profile_name);
  opt.cv_folds = 10;
  return opt;
}

}  // namespace bglpred::bench
