// Ablation (paper future work, §3.1): evaluate against *job-impacting*
// failures only. "Our future work will incorporate filtering out this
// ambiguity of failures and analyze only those failures which will
// impact user jobs." A fatal event is job-impacting when a user job was
// running on the reporting hardware (JOB_ID set); failures on idle
// partitions or infrastructure cards crash nothing.
//
// The same meta-learner warnings are scored twice — against all fatal
// events and against the job-impacting subset — plus the spatial
// locality of failure cascades.
//
// Usage: ablation_job_impact [--scale=0.3] [--window-minutes=30]

#include "bench_common.hpp"
#include "eval/job_impact.hpp"
#include "stats/correlation.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.3);
  const Duration window = args.get_int("window-minutes", 30) * kMinute;
  print_header("Ablation (future work, §3.1)",
               "Scoring against job-impacting failures only", scale);

  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    const JobImpactStats impact = job_impact_stats(prepared.log);
    std::printf("%s: %zu of %zu unique fatal events are job-impacting "
                "(%.1f%%)\n",
                profile, impact.job_impacting, impact.fatal_events,
                100.0 * impact.impacting_fraction());

    // Train on 80%, replay 20%, score the same warnings both ways.
    const auto& records = prepared.log.records();
    const std::size_t cut = records.size() * 8 / 10;
    const RasLog training = prepared.log.subset(
        {records.begin(),
         records.begin() + static_cast<std::ptrdiff_t>(cut)});
    const RasLog test = prepared.log.subset(
        {records.begin() + static_cast<std::ptrdiff_t>(cut),
         records.end()});
    ThreePhaseOptions opt = paper_options(profile, window);
    const ThreePhasePredictor tpp(opt);
    PredictorPtr meta = tpp.make_predictor(Method::kMeta);
    meta->train(training);
    meta->reset();
    std::vector<Warning> warnings;
    for (const RasRecord& rec : test.records()) {
      if (auto w = meta->observe(rec)) {
        warnings.push_back(std::move(*w));
      }
    }
    warnings = merge_episodes(std::move(warnings));

    const Confusion vs_all = match_warnings(warnings, fatal_times(test));
    const Confusion vs_impacting =
        match_warnings(warnings, job_impacting_fatal_times(test));

    TextTable table;
    table.set_header({"failure set", "failures", "precision", "recall"});
    table.add_row({"all fatal events",
                   std::to_string(vs_all.failures()),
                   TextTable::num(vs_all.precision(), 4),
                   TextTable::num(vs_all.recall(), 4)});
    table.add_row({"job-impacting only",
                   std::to_string(vs_impacting.failures()),
                   TextTable::num(vs_impacting.precision(), 4),
                   TextTable::num(vs_impacting.recall(), 4)});
    std::fputs(table.render().c_str(), stdout);

    const SpatialLocality locality = spatial_locality(prepared.log, kHour);
    std::printf("  cascade spatial locality: %.1f%% of <=1h consecutive "
                "failure pairs share a midplane (uniform: %.1f%%, lift "
                "%.1fx)\n\n",
                100.0 * locality.same_midplane_fraction,
                100.0 * locality.uniform_expectation,
                locality.locality_lift());
  }
  return 0;
}
