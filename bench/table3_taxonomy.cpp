// Reproduces Table 3: "Event Categorization" — the hierarchical RAS
// taxonomy with 8 main categories and 101 subcategories.
//
// Paper row counts: Application 12, Iostream 8, Kernel 20, Memory 22,
// Midplane 6, Network 11, NodeCard 10, Other 12 (total 101).
//
// Usage: table3_taxonomy [--full] (--full lists every subcategory)

#include <string>

#include "bench_common.hpp"
#include "taxonomy/catalog.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  print_header("Table 3", "Event categorization (8 mains / 101 subcats)",
               1.0);

  const std::size_t paper_counts[] = {12, 8, 20, 22, 6, 11, 10, 12};
  TextTable table;
  table.set_header({"Main Category", "subcats (paper)", "subcats (built)",
                    "Examples"});
  std::size_t total = 0;
  for (int c = 0; c < kMainCategoryCount; ++c) {
    const auto main = static_cast<MainCategory>(c);
    const auto& ids = catalog().by_main(main);
    total += ids.size();
    std::string examples;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, ids.size()); ++i) {
      if (i != 0) {
        examples += ", ";
      }
      examples += std::string(catalog().info(ids[i]).name);
    }
    table.add_row({to_string(main),
                   std::to_string(paper_counts[static_cast<std::size_t>(c)]),
                   std::to_string(ids.size()), examples});
  }
  table.add_row({"TOTAL", "101", std::to_string(total), ""});
  std::fputs(table.render().c_str(), stdout);

  if (args.get_bool("full", false)) {
    std::printf("\nFull subcategory catalog:\n");
    TextTable full;
    full.set_header({"id", "main", "name", "severity", "reporter",
                     "characteristic phrase"});
    for (const SubcategoryInfo& info : catalog().entries()) {
      full.add_row({std::to_string(info.id), to_string(info.main),
                    std::string(info.name), to_string(info.severity),
                    bgl::to_string(info.reporter),
                    std::string(info.phrase)});
    }
    std::fputs(full.render().c_str(), stdout);
  }
  return 0;
}
