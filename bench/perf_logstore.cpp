// google-benchmark: columnar log-store replay (EXPERIMENTS.md X13) —
// full-scan cursor decode vs the binary loader it replaces, indexed
// window replay, cold open cost, and the k-way merge.
//
//   $ ./perf_logstore            # full sweep, emits BENCH_logstore.json
//   $ ./perf_logstore --smoke    # CI gate: a 1% window replay must beat
//                                # a full scan by >= 20x on both a
//                                # fresh and a converted store
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "logstore/convert.hpp"
#include "logstore/cursor.hpp"
#include "logstore/store.hpp"
#include "raslog/binary_io.hpp"
#include "simgen/generator.hpp"

using namespace bglpred;

namespace {

/// --smoke shrinks the corpus; set in main() before benchmarks run.
bool g_smoke = false;

/// Stores are sized so even the smoke corpus spans many segments and
/// blocks — the seek machinery is what this driver measures.
logstore::StoreOptions store_options() {
  logstore::StoreOptions options;
  options.segment_records = 1024;
  options.block_records = 128;
  return options;
}

// Generated once per process: one sorted log published as a fresh
// store, a binary dump of the same records, and a store converted from
// that dump — plus two side stores for the merge benchmark.
struct Corpus {
  std::string root;
  std::string fresh_dir;
  std::string converted_dir;
  std::string binary_path;
  std::vector<std::string> merge_dirs;
  std::size_t records = 0;
  TimePoint min_time = 0;
  TimePoint max_time = 0;
  /// Time window spanning ~1% of the *records* (not the wall-clock
  /// span — RAS logs are bursty), anchored at the median record.
  TimePoint window_begin = 0;
  TimePoint window_end = 0;
};

const Corpus& corpus() {
  static const Corpus c = [] {
    Corpus out;
    out.root = (std::filesystem::temp_directory_path() /
                "bglpred_perf_logstore")
                   .string();
    std::filesystem::remove_all(out.root);
    std::filesystem::create_directories(out.root);

    // repo-lint: allow(simgen-materialize)
    RasLog log = std::move(LogGenerator(SystemProfile::anl())
                               .generate(g_smoke ? 0.004 : 0.05)
                               .log);
    log.sort_by_time();
    out.records = log.size();
    out.min_time = log.records().front().time;
    out.max_time = log.records().back().time;
    const std::size_t mid = log.size() / 2;
    const std::size_t width = std::max<std::size_t>(1, log.size() / 100);
    out.window_begin = log.records()[mid].time;
    out.window_end = std::max(out.window_begin + 1,
                              log.records()[mid + width].time);

    out.fresh_dir = out.root + "/fresh";
    logstore::store_from_log(log, out.fresh_dir, 0, store_options());

    out.binary_path = out.root + "/corpus.rasb";
    save_log_binary(out.binary_path, log);
    out.converted_dir = out.root + "/converted";
    logstore::convert_binary_log(out.binary_path, out.converted_dir, 0,
                                 store_options());

    for (std::uint64_t s = 0; s < 3; ++s) {
      // repo-lint: allow(simgen-materialize)
      RasLog part = std::move(LogGenerator(SystemProfile::anl())
                                  .generate(g_smoke ? 0.002 : 0.01, s + 1)
                                  .log);
      part.sort_by_time();
      const std::string dir = out.root + "/merge_" + std::to_string(s);
      logstore::store_from_log(part, dir, s, store_options());
      out.merge_dirs.push_back(dir);
    }
    return out;
  }();
  return c;
}

/// The precomputed ~1%-of-records window.
void window_1pct(const Corpus& c, TimePoint& begin, TimePoint& end) {
  begin = c.window_begin;
  end = c.window_end;
}

std::size_t drain(logstore::Cursor cursor) {
  logstore::StoreRecord record;
  std::size_t n = 0;
  std::size_t bytes = 0;
  while (cursor.next(record)) {
    ++n;
    bytes += record.entry.size();
  }
  benchmark::DoNotOptimize(bytes);
  return n;
}

/// Full-store cursor decode (the sequential replay path).
void BM_FullScan(benchmark::State& state) {
  const Corpus& c = corpus();
  const logstore::StoreReader reader =
      logstore::StoreReader::open(c.fresh_dir);
  std::size_t n = 0;
  for (auto _ : state) {
    n = drain(reader.scan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["records"] = static_cast<double>(n);
}

/// Indexed replay of the middle 1% of the time span: segment selection
/// plus block seek, so decode work tracks the window, not the store.
void BM_RangeSeek1Pct(benchmark::State& state) {
  const Corpus& c = corpus();
  const logstore::StoreReader reader =
      logstore::StoreReader::open(c.fresh_dir);
  TimePoint begin = 0;
  TimePoint end = 0;
  window_1pct(c, begin, end);
  std::size_t n = 0;
  for (auto _ : state) {
    n = drain(reader.range(begin, end));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["records"] = static_cast<double>(n);
}

/// mmap + footer/CRC validation cost of opening every segment.
void BM_ColdOpen(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    const logstore::StoreReader reader =
        logstore::StoreReader::open(c.fresh_dir);
    benchmark::DoNotOptimize(reader.record_count());
  }
  state.counters["segments"] = static_cast<double>(
      logstore::StoreReader::open(c.fresh_dir).segment_count());
}

/// The pre-store shape this subsystem replaces: materialize the whole
/// binary dump to replay anything.
void BM_BinaryLoadBaseline(benchmark::State& state) {
  const Corpus& c = corpus();
  for (auto _ : state) {
    const RasLog log = load_log_binary(c.binary_path);
    benchmark::DoNotOptimize(log.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.records));
}

/// Three-store k-way merge into one total order.
void BM_MergeScan(benchmark::State& state) {
  const Corpus& c = corpus();
  std::vector<logstore::StoreReader> readers;
  for (const std::string& dir : c.merge_dirs) {
    readers.push_back(logstore::StoreReader::open(dir));
  }
  std::size_t n = 0;
  for (auto _ : state) {
    std::vector<logstore::Cursor> sources;
    for (const logstore::StoreReader& reader : readers) {
      sources.push_back(reader.scan());
    }
    logstore::MergeCursor merge(std::move(sources));
    logstore::StoreRecord record;
    n = 0;
    while (merge.next(record)) {
      ++n;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["records"] = static_cast<double>(n);
}

double min_seconds_of(int repeats, const std::function<std::size_t()>& fn,
                      std::size_t* out_count) {
  double best = 1e100;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    *out_count = fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// CI gate: on both the fresh and the converted store, replaying the
/// middle 1% window must be at least 20x faster than a full scan, and
/// both stores must replay the same record count.
int run_smoke() {
  const Corpus& c = corpus();
  TimePoint begin = 0;
  TimePoint end = 0;
  window_1pct(c, begin, end);
  for (const std::string& dir : {c.fresh_dir, c.converted_dir}) {
    const logstore::StoreReader reader = logstore::StoreReader::open(dir);
    std::size_t scanned = 0;
    std::size_t windowed = 0;
    const double full = min_seconds_of(
        5, [&] { return drain(reader.scan()); }, &scanned);
    const double window = min_seconds_of(
        50, [&] { return drain(reader.range(begin, end)); }, &windowed);
    if (scanned != c.records) {
      std::fprintf(stderr, "smoke: %s replayed %zu of %zu records\n",
                   dir.c_str(), scanned, c.records);
      return 1;
    }
    if (windowed == 0 || windowed >= scanned) {
      std::fprintf(stderr, "smoke: window replay of %s degenerate (%zu)\n",
                   dir.c_str(), windowed);
      return 1;
    }
    const double speedup = full / window;
    std::printf(
        "smoke: %s full=%0.3fms (%zu recs) window=%0.3fms (%zu recs) "
        "speedup=%.1fx\n",
        dir.c_str(), full * 1e3, scanned, window * 1e3, windowed, speedup);
    if (speedup < 20.0) {
      std::fprintf(stderr,
                   "smoke: window seek speedup %.1fx below the 20x gate\n",
                   speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_FullScan)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeSeek1Pct)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ColdOpen)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BinaryLoadBaseline)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeScan)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  static char min_time[] = "--benchmark_min_time=0.01";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (g_smoke) {
    const int rc = run_smoke();
    if (rc != 0) {
      return rc;
    }
    // Still time every benchmark (tiny corpus) so BENCH_logstore.json
    // lands with all five rows.
    args.push_back(min_time);
  }
  return bglpred::bench::run_benchmark_driver(
      "logstore", static_cast<int>(args.size()), args.data());
}
