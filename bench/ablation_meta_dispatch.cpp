// Ablation for the §3.3 dispatch rule: strict vs permissive handling of
// mixed windows (both fatal and non-fatal events present but only the
// statistical base produced a prediction). DESIGN.md §5 documents why
// the permissive reading is the default.
//
// Usage: ablation_meta_dispatch [--scale=0.5] [--folds=10]

#include "bench_common.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.5);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Ablation (§3.3)", "Meta dispatch: strict vs permissive",
               scale);

  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    std::printf("%s:\n", profile);
    TextTable table;
    table.set_header({"window", "permissive P", "permissive R",
                      "strict P", "strict R"});
    for (const Duration w : {5 * kMinute, 30 * kMinute, 60 * kMinute}) {
      ThreePhaseOptions permissive = paper_options(profile, w);
      permissive.cv_folds = folds;
      permissive.meta.strict_mixed_dispatch = false;
      ThreePhaseOptions strict = permissive;
      strict.meta.strict_mixed_dispatch = true;
      const CvResult p = ThreePhasePredictor(permissive)
                             .evaluate(prepared.log, Method::kMeta);
      const CvResult s = ThreePhasePredictor(strict).evaluate(
          prepared.log, Method::kMeta);
      table.add_row({format_duration(w),
                     TextTable::num(p.macro_precision, 4),
                     TextTable::num(p.macro_recall, 4),
                     TextTable::num(s.macro_precision, 4),
                     TextTable::num(s.macro_recall, 4)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
