// Reproduces Table 5: "Prediction Results by Using Statistical
// Correlation between Fatal Events".
//
//   Log    | Precision | Recall
//   ANL    |   0.5157  | 0.4872
//   SDSC   |   0.2837  | 0.3117
//
// Configuration per §3.2.1: on a network or iostream fatal event,
// predict another failure within [5 minutes, 1 hour]; 10-fold
// cross-validation.
//
// Usage: table5_statistical [--scale=1.0] [--folds=10]

#include "bench_common.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Table 5", "Statistical predictor, [5 min, 1 h] window",
               scale);

  TextTable table;
  table.set_header({"Log Name", "Precision (paper)", "Precision (measured)",
                    "Recall (paper)", "Recall (measured)"});
  const struct {
    const char* name;
    const char* paper_p;
    const char* paper_r;
  } rows[] = {{"ANL", "0.5157", "0.4872"}, {"SDSC", "0.2837", "0.3117"}};
  for (const auto& row : rows) {
    const PreparedLog& prepared = prepared_log(row.name, scale);
    ThreePhaseOptions opt =
        paper_options(row.name, /*prediction_window=*/kHour,
                      /*lead=*/5 * kMinute);
    opt.cv_folds = folds;
    const ThreePhasePredictor tpp(opt);
    const CvResult cv = tpp.evaluate(prepared.log, Method::kStatistical);
    table.add_row({row.name, row.paper_p,
                   TextTable::num(cv.macro_precision, 4), row.paper_r,
                   TextTable::num(cv.macro_recall, 4)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Show the learned trigger probabilities that drive the method.
  std::printf("\nLearned P(follow-up failure within window | fatal event "
              "of category):\n");
  for (const char* name : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(name, scale);
    PredictionConfig config;
    config.lead = 5 * kMinute;
    config.window = kHour;
    StatisticalPredictor predictor(config);
    predictor.train(prepared.log);
    std::printf("  %-5s", name);
    for (int c = 0; c < kMainCategoryCount; ++c) {
      const auto main = static_cast<MainCategory>(c);
      std::printf(" %s=%.2f%s", to_string(main),
                  predictor.probabilities()[static_cast<std::size_t>(c)],
                  predictor.is_trigger(main) ? "*" : "");
    }
    std::printf("   (* = trigger)\n");
  }
  return 0;
}
