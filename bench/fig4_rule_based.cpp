// Reproduces Figure 4: "Prediction Results (left ANL, right SDSC)" —
// precision and recall of the rule-based predictor as the prediction
// window sweeps 5..60 minutes (rule generation window fixed at 15 min
// for ANL and 25 min for SDSC, as selected in §3.2.2).
//
// Paper bands: precision 0.7-0.9; recall 0.22-0.55, rising with the
// window without substantial precision loss.
//
// Usage: fig4_rule_based [--scale=1.0] [--folds=10] [--csv=path]

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Figure 4", "Rule-based predictor vs prediction window",
               scale);

  const Duration windows[] = {5 * kMinute,  10 * kMinute, 15 * kMinute,
                              20 * kMinute, 30 * kMinute, 45 * kMinute,
                              60 * kMinute};
  CsvWriter csv({"profile", "window_minutes", "precision", "recall"});
  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    std::printf("%s (rule generation window %s):\n", profile,
                format_duration(rulegen_window_for(profile)).c_str());
    TextTable table;
    table.set_header({"prediction window", "precision", "recall", "F1",
                      "warnings/fold"});
    for (const Duration w : windows) {
      ThreePhaseOptions opt = paper_options(profile, w);
      opt.cv_folds = folds;
      const CvResult cv =
          ThreePhasePredictor(opt).evaluate(prepared.log, Method::kRule);
      table.add_row({format_duration(w),
                     TextTable::num(cv.macro_precision, 4),
                     TextTable::num(cv.macro_recall, 4),
                     TextTable::num(cv.macro_f1(), 4),
                     TextTable::num(static_cast<double>(
                                        cv.pooled.warnings()) /
                                        static_cast<double>(folds),
                                    1)});
      csv.add_row({profile, std::to_string(w / kMinute),
                   TextTable::num(cv.macro_precision, 6),
                   TextTable::num(cv.macro_recall, 6)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("  paper band: precision 0.7-0.9, recall 0.22-0.55 "
                "(rising)\n\n");
  }
  if (args.has("csv")) {
    csv.write_file(args.get("csv", "fig4.csv"));
  }
  return 0;
}
