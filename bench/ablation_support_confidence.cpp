// Ablation for the §3.2.2 threshold discussion: the paper sets minimum
// support 0.04 and confidence 0.2, arguing lower values explode the rule
// count ("exhaustion of compute resources") while higher values miss
// fault patterns. This sweep quantifies that trade-off.
//
// Usage: ablation_support_confidence [--scale=0.5] [--folds=10]

#include <chrono>

#include "bench_common.hpp"
#include "mining/event_sets.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.5);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Ablation (§3.2.2 thresholds)",
               "Support/confidence sensitivity", scale);

  const double supports[] = {0.01, 0.02, 0.04, 0.08, 0.16};
  const double confidences[] = {0.1, 0.2, 0.4};

  const char* profile = "ANL";
  const PreparedLog& prepared = prepared_log(profile, scale);
  const TransactionDb db = extract_event_sets(
      prepared.log, rulegen_window_for(profile), nullptr);

  TextTable table;
  table.set_header({"min support", "min confidence", "rules",
                    "mining ms", "precision", "recall", "F1"});
  for (const double support : supports) {
    for (const double confidence : confidences) {
      ThreePhaseOptions opt = paper_options(profile, 30 * kMinute);
      opt.rule.rules.mining.min_support = support;
      opt.rule.rules.min_confidence = confidence;
      opt.cv_folds = folds;

      const auto t0 = std::chrono::steady_clock::now();
      const RuleSet rules = mine_rules(db, opt.rule.rules);
      const auto t1 = std::chrono::steady_clock::now();

      const CvResult cv =
          ThreePhasePredictor(opt).evaluate(prepared.log, Method::kRule);
      table.add_row(
          {TextTable::num(support, 2), TextTable::num(confidence, 1),
           std::to_string(rules.size()),
           TextTable::num(
               std::chrono::duration<double, std::milli>(t1 - t0).count(),
               1),
           TextTable::num(cv.macro_precision, 4),
           TextTable::num(cv.macro_recall, 4),
           TextTable::num(cv.macro_f1(), 4)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\npaper setting: support 0.04, confidence 0.2\n");
  return 0;
}
