// Calibration driver: prints, for each profile, every quantity the paper
// publishes next to the value this repository's generator + pipeline
// produce. Used to tune SystemProfile knobs; the per-table benches print
// the publication-ready subsets.
//
// Usage: calibrate [--profile=ANL|SDSC|both] [--scale=0.25] [--folds=10]
//                  [--window=1800]

#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/three_phase.hpp"
#include "mining/event_sets.hpp"
#include "simgen/generator.hpp"
#include "stats/interarrival.hpp"

using namespace bglpred;

namespace {

void run_profile(const SystemProfile& profile, double scale,
                 std::size_t folds, Duration window) {
  std::printf("==== %s (scale=%.2f) ====\n", profile.name.c_str(), scale);
  LogGenerator gen(profile);  // repo-lint: allow(simgen-materialize)
  GeneratedLog g = gen.generate(scale);
  std::printf("raw records: %zu (target %.0f)\n", g.log.size(),
              static_cast<double>(profile.target_raw_records) * scale);
  std::printf("unique events (truth): %zu; fatal occurrences: %zu\n",
              g.truth.unique_events, g.truth.fatal_occurrences.size());

  ThreePhaseOptions opt;
  opt.prediction.window = window;
  opt.cv_folds = folds;
  if (profile.name == "SDSC") {
    opt.rule.rule_generation_window = 25 * kMinute;
  }
  ThreePhasePredictor tpp(opt);
  PreprocessStats p1 = tpp.run_phase1(g.log);
  std::printf("after temporal: %zu, after spatial: %zu\n",
              p1.temporal.output_records, p1.spatial.output_records);
  std::printf("unique fatal: %zu (target %.0f)\n", p1.unique_fatal_events,
              static_cast<double>(profile.total_fatal_target()) * scale);
  TextTable t4;
  t4.set_header({"category", "measured", "target(scaled)"});
  for (int c = 0; c < kMainCategoryCount; ++c) {
    t4.add_row({to_string(static_cast<MainCategory>(c)),
                TextTable::count(static_cast<std::int64_t>(
                    p1.fatal_per_main[static_cast<std::size_t>(c)])),
                TextTable::num(
                    static_cast<double>(
                        profile.fatal_per_category[static_cast<std::size_t>(
                            c)]) *
                        scale,
                    0)});
  }
  std::cout << t4.render();

  // Fig 2 proxy: CDF of inter-failure gaps at a few points.
  const Ecdf cdf = fatal_gap_cdf(g.log);
  std::printf("gap CDF: 5m=%.3f 15m=%.3f 30m=%.3f 1h=%.3f 4h=%.3f 1d=%.3f\n",
              cdf.eval(5 * kMinute), cdf.eval(15 * kMinute),
              cdf.eval(30 * kMinute), cdf.eval(1 * kHour),
              cdf.eval(4 * kHour), cdf.eval(1 * kDay));

  // Precursor coverage at several windows.
  for (Duration w : {5 * kMinute, 15 * kMinute, 30 * kMinute, kHour}) {
    EventSetStats es;
    extract_event_sets(g.log, w, &es);
    std::printf("no-precursor fraction @%lldm: %.3f\n",
                static_cast<long long>(w / kMinute),
                es.no_precursor_fraction());
  }

  // Table-5 configuration: statistical predictor with [5 min, 1 h] window.
  {
    ThreePhaseOptions t5 = opt;
    t5.prediction.lead = 5 * kMinute;
    t5.prediction.window = kHour;
    ThreePhasePredictor tpp5(t5);
    const CvResult cv = tpp5.evaluate(g.log, Method::kStatistical);
    std::printf("statistical[5m,1h]  P=%.4f R=%.4f\n", cv.macro_precision,
                cv.macro_recall);
  }

  for (Method m : {Method::kStatistical, Method::kRule, Method::kMeta}) {
    const CvResult cv = tpp.evaluate(g.log, m);
    std::printf("%-12s  P=%.4f R=%.4f (pooled P=%.4f R=%.4f) warn/fold=%.0f\n",
                to_string(m), cv.macro_precision, cv.macro_recall,
                cv.pooled.precision(), cv.pooled.recall(),
                static_cast<double>(cv.pooled.warnings()) /
                    static_cast<double>(folds));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string which = args.get("profile", "both");
  const double scale = args.get_double("scale", 0.25);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  const Duration window = args.get_int("window", 30 * kMinute);

  if (which == "ANL" || which == "both") {
    run_profile(SystemProfile::anl(), scale, folds, window);
  }
  if (which == "SDSC" || which == "both") {
    run_profile(SystemProfile::sdsc(), scale, folds, window);
  }
  return 0;
}
