// google-benchmark: Phase-1 throughput — categorization plus temporal and
// spatial compression, in records/second. This is the path that must keep
// up with CMCS's sub-millisecond logging for online deployment.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "preprocess/pipeline.hpp"
#include "simgen/generator.hpp"

using namespace bglpred;
using namespace bglpred::bench;

namespace {

void BM_Phase1Pipeline(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  // Generate once outside the loop; preprocess mutates, so copy per
  // iteration through subset().
  const GeneratedLog generated =  // repo-lint: allow(simgen-materialize)
      LogGenerator(SystemProfile::anl()).generate(scale);
  std::size_t unique = 0;
  for (auto _ : state) {
    state.PauseTiming();
    RasLog copy = generated.log.subset(generated.log.records());
    state.ResumeTiming();
    const PreprocessStats stats = preprocess(copy);
    unique = stats.unique_events;
    benchmark::DoNotOptimize(unique);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(generated.log.size()));
  state.counters["raw_records"] =
      static_cast<double>(generated.log.size());
  state.counters["unique"] = static_cast<double>(unique);
}

void BM_TemporalCompressionOnly(benchmark::State& state) {
  const GeneratedLog generated =  // repo-lint: allow(simgen-materialize)
      LogGenerator(SystemProfile::anl()).generate(0.1);
  // Pre-classify once; compression is the measured piece.
  RasLog classified = generated.log.subset(generated.log.records());
  const EventClassifier classifier;
  classified.sort_by_time();
  classifier.classify_all(classified);
  for (auto _ : state) {
    state.PauseTiming();
    RasLog copy = classified.subset(classified.records());
    state.ResumeTiming();
    benchmark::DoNotOptimize(compress_temporal(copy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(classified.size()));
}

}  // namespace

// Range arg: generation scale x100 (2 -> 0.02 of the 15-month log).
BENCHMARK(BM_Phase1Pipeline)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemporalCompressionOnly)->Unit(benchmark::kMillisecond);

BGL_BENCH_MAIN("perf_preprocess")
