// Reproduces Figure 3: "Partial List of Generated Association Rules with
// Their Confidence Values" — the top rules mined from the ANL log with a
// 15-minute rule generation window (support >= 0.04, confidence >= 0.2).
//
// The paper's list includes e.g.
//   nodeMapFileError ==> nodemapCreateFailure: 1
//   ddrErrorCorrectionInfo maskInfo ==> socketReadFailure: 0.697674
//   ciodRestartInfo midplaneStartInfo controlNetworkInfo ==> rtsLinkFailure
//
// Usage: fig3_rules [--scale=1.0] [--profile=ANL] [--top=15]

#include "bench_common.hpp"
#include "mining/event_sets.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const std::string profile = args.get("profile", "ANL");
  const auto top = static_cast<std::size_t>(args.get_int("top", 15));
  print_header("Figure 3", "Mined association rules with confidences",
               scale);

  const PreparedLog& prepared = prepared_log(profile, scale);
  const Duration window = rulegen_window_for(profile);

  EventSetStats stats;
  const TransactionDb db = extract_event_sets(prepared.log, window, &stats,
                                              /*negative_ratio=*/2.0);
  RuleOptions options;  // paper thresholds: support 0.04, confidence 0.2
  const RuleSet rules = mine_rules(db, options);

  std::printf("%s log, rule generation window %s: %zu event-sets "
              "(%.1f%% without precursors), %zu combined rules\n\n",
              profile.c_str(), format_duration(window).c_str(), db.size(),
              100.0 * stats.no_precursor_fraction(), rules.size());
  const std::size_t n = std::min(top, rules.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  %s\n", rules.rules()[i].to_string().c_str());
  }
  if (rules.size() > n) {
    std::printf("  ... (%zu more)\n", rules.size() - n);
  }

  // Check the named Figure-3 implications were rediscovered.
  std::printf("\nFigure-3 implications rediscovered from the synthetic "
              "log:\n");
  const struct {
    const char* body;
    const char* head;
  } expected[] = {
      {"nodeMapFileError", "nodemapCreateFailure"},
      {"controlNetworkNMCSError", "nodeConnectionFailure"},
      {"coredumpCreated", "loadProgramFailure"},
  };
  for (const auto& e : expected) {
    const Item body = body_item(catalog().find(e.body));
    const SubcategoryId head = catalog().find(e.head);
    bool found = false;
    double confidence = 0.0;
    for (const Rule& rule : rules.rules()) {
      if (is_subset({body}, rule.body) &&
          std::find(rule.heads.begin(), rule.heads.end(), head) !=
              rule.heads.end()) {
        found = true;
        confidence = rule.confidence;
        break;
      }
    }
    const std::string status =
        found ? "found (conf " + TextTable::num(confidence, 3) + ")"
              : "NOT FOUND";
    std::printf("  %-26s ==> %-24s %s\n", e.body, e.head, status.c_str());
  }
  return 0;
}
