// Ablation: redundant-rule pruning. Per-class mining emits every
// frequent sub-body as a rule; pruning removes rules dominated by a
// smaller body with >= confidence and >= heads. This driver measures how
// much the matcher's working set shrinks and verifies prediction quality
// is unchanged.
//
// Usage: ablation_rule_pruning [--scale=0.3] [--folds=10]

#include <cmath>

#include "bench_common.hpp"
#include "mining/event_sets.hpp"
#include "mining/pruning.hpp"

using namespace bglpred;
using namespace bglpred::bench;


int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.3);
  print_header("Ablation (extension)", "Redundant-rule pruning", scale);

  TextTable table;
  table.set_header({"log", "rule-gen window", "rules", "after pruning",
                    "reduction", "best-match preserved"});
  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    for (const Duration w : {15 * kMinute, 30 * kMinute, 60 * kMinute}) {
      const TransactionDb db =
          extract_event_sets(prepared.log, w, nullptr, 4.0);
      const RuleSet full = mine_rules(db, RuleOptions{});
      PruneStats stats;
      const RuleSet pruned = prune_redundant_rules(full, &stats);
      // Verify best_match confidence is preserved over every rule body.
      bool preserved = true;
      for (const Rule& r : full.rules()) {
        const Rule* a = full.best_match(r.body);
        const Rule* b = pruned.best_match(r.body);
        if (a == nullptr || b == nullptr ||
            std::abs(a->confidence - b->confidence) > 1e-9) {
          preserved = false;
          break;
        }
      }
      table.add_row({profile, format_duration(w),
                     std::to_string(stats.input_rules),
                     std::to_string(stats.kept),
                     TextTable::num(100.0 * static_cast<double>(
                                                stats.pruned) /
                                        std::max<std::size_t>(
                                            1, stats.input_rules),
                                    1) +
                         "%",
                     preserved ? "yes" : "NO"});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
