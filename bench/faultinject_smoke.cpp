// Fault-injection smoke harness (EXPERIMENTS.md X8).
//
// Generates a log, injects every fault class the faultinject subsystem
// models, and pushes the damaged data through the lenient readers and
// the hardened OnlineEngine, printing the survival rate per fault class.
// Any uncaught exception fails the run (CI executes this binary), so
// "survives" means exactly that: no throw, reconciling ingest report,
// oracle-identical warnings under bounded reordering, and a
// checkpoint/restore that resumes byte-identically.
//
// Usage: faultinject_smoke [--scale=0.02] [--seeds=5]

#include <sstream>

#include "bench_common.hpp"
#include "core/online.hpp"
#include "faultinject/faults.hpp"
#include "raslog/binary_io.hpp"
#include "raslog/io.hpp"

using namespace bglpred;
using namespace bglpred::bench;

namespace {

struct Survival {
  std::size_t trials = 0;
  std::size_t survived = 0;
  std::size_t records_kept = 0;
  std::size_t records_dropped = 0;
};

std::string rate(const Survival& s) {
  return TextTable::count(static_cast<std::int64_t>(s.survived)) + "/" +
         TextTable::count(static_cast<std::int64_t>(s.trials));
}

std::string kept_fraction(const Survival& s) {
  const std::size_t total = s.records_kept + s.records_dropped;
  if (total == 0) {
    return "-";
  }
  return TextTable::num(100.0 * static_cast<double>(s.records_kept) /
                            static_cast<double>(total),
                        1) +
         "%";
}

std::vector<Warning> run_stream(OnlineEngine& engine, const RasLog& log,
                                const std::vector<RasRecord>& order) {
  std::vector<Warning> out;
  for (const RasRecord& rec : order) {
    for (Warning& w : engine.feed(rec, log.text_of(rec))) {
      out.push_back(std::move(w));
    }
  }
  for (Warning& w : engine.flush()) {
    out.push_back(std::move(w));
  }
  return out;
}

bool same_warnings(const std::vector<Warning>& a,
                   const std::vector<Warning>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].issued_at != b[i].issued_at ||
        a[i].window_begin != b[i].window_begin ||
        a[i].window_end != b[i].window_end ||
        a[i].confidence != b[i].confidence || a[i].source != b[i].source ||
        a[i].mergeable != b[i].mergeable) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    const double scale = args.get_double("scale", 0.02);
    const auto seeds =
        static_cast<std::uint64_t>(args.get_int("seeds", 5));
    print_header("X8", "fault-injection survival smoke", scale);

    // Fault injection corrupts a written artifact, so the full log must
    // exist on disk first.
    // repo-lint: allow(simgen-materialize)
    GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(scale);
    std::stringstream text_buffer;
    write_log(text_buffer, g.log);
    const std::string text = text_buffer.str();
    std::stringstream bin_buffer;
    write_log_binary(bin_buffer, g.log);
    const std::string blob = bin_buffer.str();
    std::printf("base log: %zu records, %zu text bytes, %zu binary bytes\n",
                g.log.size(), text.size(), blob.size());

    Survival field, truncation, storm, binary_cut, binary_corrupt;
    Survival reorder, checkpoint;

    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      // Field corruption.
      {
        Rng rng(seed);
        TextFaultOptions opts;
        opts.field_corruption_rate = 0.2;
        const std::string dirty = inject_text_faults(text, opts, rng);
        std::stringstream in(dirty);
        IngestReport report;
        ++field.trials;
        read_log(in, ReadOptions::lenient(), &report);
        field.survived += report.reconciles() ? 1 : 0;
        field.records_kept += report.records_kept;
        field.records_dropped += report.records_dropped;
      }
      // Line truncation.
      {
        Rng rng(seed);
        TextFaultOptions opts;
        opts.line_truncation_rate = 0.2;
        const std::string dirty = inject_text_faults(text, opts, rng);
        std::stringstream in(dirty);
        IngestReport report;
        ++truncation.trials;
        read_log(in, ReadOptions::lenient(), &report);
        truncation.survived += report.reconciles() ? 1 : 0;
        truncation.records_kept += report.records_kept;
        truncation.records_dropped += report.records_dropped;
      }
      // Duplicate storm.
      {
        Rng rng(seed);
        DuplicateStormOptions opts;
        opts.duplicate_rate = 0.05;
        const std::string stormy = inject_duplicate_storm(text, opts, rng);
        std::stringstream in(stormy);
        IngestReport report;
        ++storm.trials;
        read_log(in, ReadOptions::lenient(), &report);
        storm.survived +=
            report.reconciles() && report.records_dropped == 0 ? 1 : 0;
        storm.records_kept += report.records_kept;
        storm.records_dropped += report.records_dropped;
      }
      // Binary truncation (keep at least the magic: a shorter blob is a
      // wrong file, which even lenient reads reject by design).
      {
        Rng rng(seed);
        const double min_keep =
            blob.empty() ? 1.0
                         : 16.0 / static_cast<double>(blob.size());
        const std::string cut = truncate_blob(blob, rng, min_keep);
        std::stringstream in(cut);
        IngestReport report;
        ++binary_cut.trials;
        read_log_binary(in, ReadOptions::lenient(), &report);
        binary_cut.survived += report.reconciles() ? 1 : 0;
        binary_cut.records_kept += report.records_kept;
        binary_cut.records_dropped += report.records_dropped;
      }
      // Binary byte corruption in the record region. The string
      // dictionary ahead of it is deliberately preserved: a corrupted
      // length prefix there aborts into truncated salvage (defined, but
      // nothing kept), whereas record-region damage exercises the
      // interesting property — per-record skip without losing framing.
      {
        Rng rng(seed);
        const std::size_t records_bytes = g.log.size() * 28;
        const std::size_t dictionary_bytes =
            blob.size() > records_bytes ? blob.size() - records_bytes : 0;
        const std::string dirty =
            corrupt_blob(blob, 0.0005, rng, dictionary_bytes);
        std::stringstream in(dirty);
        IngestReport report;
        ++binary_corrupt.trials;
        read_log_binary(in, ReadOptions::lenient(), &report);
        binary_corrupt.survived += report.reconciles() ? 1 : 0;
        binary_corrupt.records_kept += report.records_kept;
        binary_corrupt.records_dropped += report.records_dropped;
      }
      // Bounded reordering vs the in-order oracle.
      {
        Rng rng(seed);
        SkewOptions opts;
        opts.skew_probability = 0.5;
        opts.max_skew = 120;
        const std::vector<RasRecord> skewed = inject_timestamp_skew(
            g.log.records(), opts, rng);
        const ThreePhasePredictor tpp;
        OnlineOptions engine_opts;
        engine_opts.reorder_horizon = opts.max_skew + 1;
        OnlineEngine oracle(tpp.make_predictor(Method::kEveryFailure),
                            engine_opts);
        OnlineEngine hardened(tpp.make_predictor(Method::kEveryFailure),
                              engine_opts);
        const auto a = run_stream(oracle, g.log, g.log.records());
        const auto b = run_stream(hardened, g.log, skewed);
        ++reorder.trials;
        reorder.survived += same_warnings(a, b) ? 1 : 0;
      }
      // Checkpoint/restore mid-stream.
      {
        const ThreePhasePredictor tpp;
        OnlineEngine continuous(tpp.make_predictor(Method::kEveryFailure));
        OnlineEngine first_half(tpp.make_predictor(Method::kEveryFailure));
        const std::vector<RasRecord>& recs = g.log.records();
        const std::size_t mid = recs.size() / 2;
        std::vector<Warning> cw, iw;
        for (std::size_t i = 0; i < mid; ++i) {
          for (Warning& w : continuous.feed(recs[i], g.log.text_of(recs[i]))) {
            cw.push_back(std::move(w));
          }
          for (Warning& w : first_half.feed(recs[i], g.log.text_of(recs[i]))) {
            iw.push_back(std::move(w));
          }
        }
        std::stringstream snap;
        first_half.save(snap);
        OnlineEngine restored = OnlineEngine::restore(
            snap, tpp.make_predictor(Method::kEveryFailure));
        for (std::size_t i = mid; i < recs.size(); ++i) {
          for (Warning& w : continuous.feed(recs[i], g.log.text_of(recs[i]))) {
            cw.push_back(std::move(w));
          }
          for (Warning& w : restored.feed(recs[i], g.log.text_of(recs[i]))) {
            iw.push_back(std::move(w));
          }
        }
        ++checkpoint.trials;
        checkpoint.survived += same_warnings(cw, iw) ? 1 : 0;
      }
    }

    TextTable table;
    table.set_header({"fault class", "survived", "records kept"});
    table.add_row({"text field corruption", rate(field),
                   kept_fraction(field)});
    table.add_row({"text line truncation", rate(truncation),
                   kept_fraction(truncation)});
    table.add_row({"duplicate storm", rate(storm), kept_fraction(storm)});
    table.add_row({"binary truncation", rate(binary_cut),
                   kept_fraction(binary_cut)});
    table.add_row({"binary byte corruption", rate(binary_corrupt),
                   kept_fraction(binary_corrupt)});
    table.add_row({"bounded reordering", rate(reorder), "-"});
    table.add_row({"checkpoint/restore", rate(checkpoint), "-"});
    std::fputs(table.render().c_str(), stdout);

    const bool all_survived =
        field.survived == field.trials &&
        truncation.survived == truncation.trials &&
        storm.survived == storm.trials &&
        binary_cut.survived == binary_cut.trials &&
        binary_corrupt.survived == binary_corrupt.trials &&
        reorder.survived == reorder.trials &&
        checkpoint.survived == checkpoint.trials;
    if (!all_survived) {
      std::fprintf(stderr, "faultinject_smoke: survival below 100%%\n");
      return 1;
    }
    std::printf("\nall %llu seeds survived every fault class\n",
                static_cast<unsigned long long>(seeds));
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "faultinject_smoke: %s\n", e.what());
    return 1;
  }
}
