// Extension report: achieved warning lead times and the cross-category
// cascade matrix.
//
// The paper motivates prediction with proactive fault tolerance
// (checkpointing, migration) — which needs *lead time*, not just
// coverage. This driver trains the meta-learner on 80% of each log,
// replays the rest, and reports the lead-time distribution of covered
// failures plus the actionable fraction at checkpoint-scale thresholds.
// It also prints the category-cascade matrix behind the statistical
// method (which classes' failures foreshadow which).
//
// Usage: report_lead_time [--scale=0.3] [--window-minutes=30]

#include "bench_common.hpp"
#include "eval/lead_time.hpp"
#include "stats/correlation.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.3);
  const Duration window = args.get_int("window-minutes", 30) * kMinute;
  print_header("Lead-time & cascade report (extension)",
               "operational value of the meta-learner's warnings", scale);

  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    const auto& records = prepared.log.records();
    const std::size_t cut = records.size() * 8 / 10;
    const RasLog training = prepared.log.subset(
        {records.begin(), records.begin() + static_cast<std::ptrdiff_t>(cut)});
    const RasLog test = prepared.log.subset(
        {records.begin() + static_cast<std::ptrdiff_t>(cut), records.end()});

    ThreePhaseOptions opt = paper_options(profile, window);
    const ThreePhasePredictor tpp(opt);
    PredictorPtr meta = tpp.make_predictor(Method::kMeta);
    meta->train(training);
    meta->reset();
    std::vector<Warning> warnings;
    for (const RasRecord& rec : test.records()) {
      if (auto w = meta->observe(rec)) {
        warnings.push_back(std::move(*w));
      }
    }
    const LeadTimeReport report =
        lead_time_report(warnings, fatal_times(test));

    std::printf("%s (window %s): %zu/%zu failures covered\n", profile,
                format_duration(window).c_str(), report.covered,
                report.failures);
    std::printf("  lead time: median %s, mean %s, max %s\n",
                format_duration(static_cast<Duration>(
                                    report.summary.median))
                    .c_str(),
                format_duration(static_cast<Duration>(report.summary.mean))
                    .c_str(),
                format_duration(static_cast<Duration>(report.summary.max))
                    .c_str());
    for (const Duration t : {2 * kMinute, 5 * kMinute, 10 * kMinute}) {
      std::printf("  covered failures with >= %s lead: %.1f%%\n",
                  format_duration(t).c_str(),
                  100.0 * report.actionable_fraction(t));
    }
    std::printf("\n");
  }

  std::printf("Cross-category cascade matrix, ANL, P(col within 1h | "
              "row just failed):\n");
  const CategoryCorrelation corr =
      category_correlation(prepared_log("ANL", scale).log, 0, kHour);
  std::fputs(corr.render().c_str(), stdout);
  std::printf("\nnetwork->iostream lift over baseline: %.2fx\n",
              corr.lift(MainCategory::kNetwork, MainCategory::kIostream));
  return 0;
}
