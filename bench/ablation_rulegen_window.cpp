// Ablation for §3.2.2 Step 5: the rule-generation-window sweep the paper
// ran to pick 15 minutes (ANL) / 25 minutes (SDSC): "we conducted
// experiments with window size ranging from 5 minutes to 1 hour [and]
// chose the window size which gives the best precision with highest
// recall".
//
// Usage: ablation_rulegen_window [--scale=0.5] [--folds=10]

#include "bench_common.hpp"
#include "mining/event_sets.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.5);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Ablation (§3.2.2 Step 5)",
               "Rule-generation window selection sweep", scale);

  const Duration windows[] = {5 * kMinute,  10 * kMinute, 15 * kMinute,
                              20 * kMinute, 25 * kMinute, 30 * kMinute,
                              45 * kMinute, 60 * kMinute};
  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    std::printf("%s (prediction window fixed at 30 min):\n", profile);
    TextTable table;
    table.set_header({"rule-gen window", "rules", "no-precursor frac",
                      "precision", "recall", "F1"});
    for (const Duration w : windows) {
      ThreePhaseOptions opt = paper_options(profile, 30 * kMinute);
      opt.rule.rule_generation_window = w;
      opt.cv_folds = folds;

      EventSetStats stats;
      const TransactionDb db = extract_event_sets(prepared.log, w, &stats);
      const RuleSet rules = mine_rules(db, opt.rule.rules);

      const CvResult cv =
          ThreePhasePredictor(opt).evaluate(prepared.log, Method::kRule);
      table.add_row({format_duration(w), std::to_string(rules.size()),
                     TextTable::num(stats.no_precursor_fraction(), 3),
                     TextTable::num(cv.macro_precision, 4),
                     TextTable::num(cv.macro_recall, 4),
                     TextTable::num(cv.macro_f1(), 4)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("  paper choice: %s\n\n",
                format_duration(rulegen_window_for(profile)).c_str());
  }
  return 0;
}
