// Deterministic load generator for the sharded prediction service
// (EXPERIMENTS.md X9/X11).
//
// Two workloads share this binary:
//
//  * BM_ServeLoadgen — the original blocking-client replay: simgen logs
//    as interleaved streams through a real loopback server, reporting
//    records/s plus the p50/p99 warning age from the server's own
//    histogram.
//  * BM_ServeSweep — the 1→10k concurrent-connection latency sweep
//    (EXPERIMENTS.md X11). Every connection is a nonblocking state
//    machine driven by a client-side epoll EventPoller: pre-encoded
//    pipelined SUBMIT_BATCH windows go out, per-frame submit→reply
//    latency lands in an exact (sorted-sample) p50/p99/p999, and the
//    row reports throughput plus dropped/desynced/busy anomaly counts.
//    The server runs whichever backend BGL_SERVE_POLL selects, so the
//    same sweep measures epoll against the poll() oracle.
//
//   $ ./serve_loadgen                   # full google-benchmark sweep
//   $ ./serve_loadgen --smoke           # CI gate: correctness pass +
//                                       # epoll-vs-poll-baseline
//                                       # throughput floor, then emits
//                                       # BENCH_serve.json (cheap row)
//   $ ./serve_loadgen --sweep-smoke     # CI gate: few-hundred-conn
//                                       # sweep, p99 bound, zero
//                                       # dropped/desynced frames
//   $ ./serve_loadgen --write-baseline  # regenerate the committed
//                                       # poll() oracle baseline JSON
//   $ ./serve_loadgen --chaos           # network chaos survival run
//                                       # (EXPERIMENTS.md X12): six
//                                       # misbehaving personas against a
//                                       # limits-armed server while
//                                       # healthy pipelined lanes gate
//                                       # p99 / exactly-once / RSS ->
//                                       # BENCH_chaos.json
//   $ ./serve_loadgen --chaos-smoke     # same gates, CI-sized phases
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/binary.hpp"
#include "core/three_phase.hpp"
#include "faultinject/chaos_clients.hpp"
#include "serve/client.hpp"
#include "serve/event_poller.hpp"
#include "serve/net_util.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "simgen/stream.hpp"

using namespace bglpred;
using namespace bglpred::serve;

namespace {

/// --smoke shrinks the workload; set in main() before benchmarks run.
bool g_smoke = false;

#ifndef BGL_SERVE_BASELINE_PATH
#define BGL_SERVE_BASELINE_PATH "BENCH_serve_poll_baseline.json"
#endif

struct Workload {
  std::vector<std::vector<WireRecord>> streams;
  std::size_t total_records = 0;
};

/// Generated once per process: `streams` interleaved record sequences
/// with their raw entry text, byte-reproducible across runs. Built off
/// the streaming generator batch by batch — the global record index
/// keeps the round-robin interleave identical to a whole-log split, but
/// no full RasLog is ever resident.
const Workload& workload() {
  static const Workload w = [] {
    Workload out;
    StreamConfig config;
    config.scale = g_smoke ? 0.01 : 0.05;
    const std::size_t streams = g_smoke ? 2 : 8;
    StreamRecordSource source(SystemProfile::anl(), config);
    out.streams.resize(streams);
    RasLog batch;
    while (source.next_batch(batch)) {
      for (const RasRecord& rec : batch.records()) {
        out.streams[out.total_records % streams].push_back(
            WireRecord{rec, std::string(batch.text_of(rec))});
        ++out.total_records;
      }
    }
    return out;
  }();
  return w;
}

ServerOptions sweep_server_options(const ThreePhasePredictor& tpp) {
  ServerOptions options;
  options.listen_backlog = 4096;  // connection storms; kernel clamps
  options.shards.shard_count = 2;
  // Deep queues: the sweep measures latency/throughput, and a client
  // that never resubmits would silently lose REJECTED_BUSY records —
  // anomaly counters assert this stays zero instead.
  options.shards.queue_capacity = 1u << 20;
  options.shards.predictor_factory = [&tpp] {
    return tpp.make_predictor(Method::kEveryFailure);
  };
  return options;
}

// ---- fd budget -----------------------------------------------------------

/// Both ends of every loopback connection live in this process, so N
/// connections cost ~2N descriptors. The raise itself is the shared
/// serve::raise_fd_limit() the server also calls at startup; only the
/// both-ends-in-one-process budget math stays here.
std::size_t raise_fd_limit_and_cap() {
  const std::size_t soft = raise_fd_limit();
  // Headroom for the listener, pollers, eventfds, benchmark files, and
  // whatever the runtime already holds open.
  const std::size_t budget = soft > 256 ? soft - 256 : 0;
  return budget / 2;
}

std::size_t fd_capped_connections() {
  static const std::size_t cap = raise_fd_limit_and_cap();
  return cap;
}

// ---- the connection sweep ------------------------------------------------

struct SweepConfig {
  std::size_t connections = 1;
  std::size_t frames_per_conn = 4;
  std::size_t records_per_frame = 4;
};

struct SweepResult {
  std::size_t connections = 0;       ///< actually opened
  std::size_t records_submitted = 0;
  std::uint64_t records_accepted = 0;
  double elapsed_s = 0.0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::size_t busy_replies = 0;    ///< REJECTED_BUSY (queue too small)
  std::size_t dropped = 0;         ///< conns that died before all replies
  std::size_t desynced = 0;        ///< mismatched/error/undecodable frames
};

/// Per-connection client state machine (see file header).
struct SweepConn {
  OwnedFd fd;
  std::size_t write_off = 0;      ///< into the shared wire image
  std::string wire;               ///< patched copy of the frame template
  std::size_t next_stamp = 0;     ///< frames fully handed to the kernel
  std::size_t replies = 0;
  bool want_write = false;
  bool done = false;
  FrameReader reader;
  std::vector<std::chrono::steady_clock::time_point> sent_at;
};

/// Pre-encodes one connection's frames: a single pipelined window —
/// head unflagged, followers kFlagPipelineFollow — with stream_id 0 to
/// be patched per connection (the CRC covers only the payload, so
/// header patching is free). Returns the byte image plus each frame's
/// end offset (for send-completion stamping) and start offset (for
/// stream-id patching).
struct FrameTemplate {
  std::string wire;
  std::vector<std::size_t> frame_starts;
  std::vector<std::size_t> frame_ends;
  std::size_t records = 0;
};

FrameTemplate build_template(const SweepConfig& cfg) {
  // Flattened record pool, tiled when a config needs more than the
  // generated log holds.
  const Workload& load = workload();
  std::vector<const WireRecord*> pool;
  for (const auto& stream : load.streams) {
    for (const WireRecord& wr : stream) {
      pool.push_back(&wr);
    }
  }
  FrameTemplate tpl;
  std::size_t next = 0;
  for (std::size_t f = 0; f < cfg.frames_per_conn; ++f) {
    Frame frame;
    frame.type = MessageType::kSubmitBatch;
    frame.stream_id = 0;  // patched per connection
    frame.seq = static_cast<std::uint32_t>(f + 1);
    if (f > 0) {
      frame.flags = kFlagPipelineFollow;
    }
    wire::append<std::uint32_t>(
        frame.payload, static_cast<std::uint32_t>(cfg.records_per_frame));
    for (std::size_t r = 0; r < cfg.records_per_frame; ++r) {
      const WireRecord& wr = *pool[next++ % pool.size()];
      encode_record(frame.payload, wr.record, wr.entry);
      ++tpl.records;
    }
    tpl.frame_starts.push_back(tpl.wire.size());
    tpl.wire += encode_frame(frame);
    tpl.frame_ends.push_back(tpl.wire.size());
  }
  return tpl;
}

void patch_stream_id(std::string& wire,
                     const std::vector<std::size_t>& frame_starts,
                     std::uint64_t stream_id) {
  for (const std::size_t start : frame_starts) {
    for (std::size_t b = 0; b < 8; ++b) {
      wire[start + 8 + b] =
          static_cast<char>((stream_id >> (8 * b)) & 0xff);
    }
  }
}

/// Writes as much of the connection's remaining bytes as the kernel
/// accepts, stamping each frame the moment its last byte is handed
/// over. Returns false when the connection failed.
bool pump_writes(SweepConn& conn, const FrameTemplate& tpl) {
  try {
    while (conn.write_off < conn.wire.size()) {
      const std::size_t n = send_nonblocking(
          conn.fd, std::string_view(conn.wire).substr(conn.write_off));
      if (n == SIZE_MAX) {
        break;
      }
      conn.write_off += n;
      const auto now = std::chrono::steady_clock::now();
      while (conn.next_stamp < tpl.frame_ends.size() &&
             conn.write_off >= tpl.frame_ends[conn.next_stamp]) {
        conn.sent_at[conn.next_stamp] = now;
        ++conn.next_stamp;
      }
    }
  } catch (const Error&) {
    return false;
  }
  return true;
}

SweepResult run_sweep(const SweepConfig& cfg, const ThreePhasePredictor& tpp) {
  SweepResult result;
  const FrameTemplate tpl = build_template(cfg);

  ServerOptions options = sweep_server_options(tpp);
  Server server(options);
  server.start();

  // Phase 1 (untimed): open the connection population. Blocking
  // connects pace themselves against the server's accept loop.
  std::vector<std::unique_ptr<SweepConn>> conns;
  conns.reserve(cfg.connections);
  for (std::size_t c = 0; c < cfg.connections; ++c) {
    auto conn = std::make_unique<SweepConn>();
    conn->fd = connect_loopback(server.port());
    set_nonblocking(conn->fd);
    conn->wire = tpl.wire;
    patch_stream_id(conn->wire, tpl.frame_starts,
                    /*stream_id=*/c + 1);
    conn->sent_at.resize(cfg.frames_per_conn);
    conns.push_back(std::move(conn));
  }
  result.connections = conns.size();
  result.records_submitted = tpl.records * conns.size();

  // Phase 2 (timed): drive every connection to completion off a
  // client-side epoll poller.
  std::vector<std::uint64_t> latencies_us;
  latencies_us.reserve(conns.size() * cfg.frames_per_conn);
  auto poller = make_event_poller(PollerBackend::kEpoll);
  std::vector<SweepConn*> by_fd(65536, nullptr);
  std::size_t done_count = 0;
  std::vector<char> scratch(64 * 1024);
  std::vector<ReadyEvent> events;

  const auto handle_reply = [&](SweepConn& conn, const Frame& frame) {
    const std::size_t idx = frame.seq == 0 ? SIZE_MAX : frame.seq - 1;
    if (idx >= cfg.frames_per_conn) {
      ++result.desynced;
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    latencies_us.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - conn.sent_at[idx])
            .count()));
    if (frame.type == MessageType::kOk ||
        frame.type == MessageType::kRejectedBusy) {
      BytesReader in(frame.payload);
      result.records_accepted += in.read<std::uint64_t>("accepted count");
      if (frame.type == MessageType::kRejectedBusy) {
        ++result.busy_replies;
      }
    } else {
      ++result.desynced;
    }
    ++conn.replies;
  };

  const auto start = std::chrono::steady_clock::now();
  for (auto& conn : conns) {
    by_fd[static_cast<std::size_t>(conn->fd.get())] = conn.get();
    poller->add(conn->fd.get(), /*want_write=*/false);
    if (!pump_writes(*conn, tpl)) {
      conn->done = true;
      ++done_count;
      ++result.dropped;
      poller->remove(conn->fd.get());
      continue;
    }
    if (conn->write_off < conn->wire.size()) {
      conn->want_write = true;
      poller->set_want_write(conn->fd.get(), true);
    }
  }
  const auto deadline = start + std::chrono::seconds(120);
  while (done_count < conns.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = poller->wait(1000, events);
    for (std::size_t i = 0; i < n; ++i) {
      SweepConn* conn = by_fd[static_cast<std::size_t>(events[i].fd)];
      if (conn == nullptr || conn->done) {
        continue;
      }
      bool failed = false;
      if (events[i].writable && conn->write_off < conn->wire.size()) {
        failed = !pump_writes(*conn, tpl);
        if (!failed && conn->write_off == conn->wire.size() &&
            conn->want_write) {
          conn->want_write = false;
          poller->set_want_write(conn->fd.get(), false);
        }
      }
      if (!failed && events[i].readable) {
        try {
          for (;;) {
            const std::size_t r =
                recv_into(conn->fd, scratch.data(), scratch.size());
            if (r == SIZE_MAX) {
              break;
            }
            if (r == 0) {
              failed = conn->replies < cfg.frames_per_conn;
              break;
            }
            conn->reader.feed(std::string_view(scratch.data(), r));
            Frame frame;
            FrameError error;
            for (;;) {
              const FrameReader::Status st = conn->reader.next(frame, error);
              if (st == FrameReader::Status::kNeedMore) {
                break;
              }
              if (st != FrameReader::Status::kFrame) {
                ++result.desynced;
                failed = true;
                break;
              }
              handle_reply(*conn, frame);
            }
            if (failed || conn->replies == cfg.frames_per_conn) {
              break;
            }
          }
        } catch (const Error&) {
          failed = true;
        }
      }
      if (!conn->done &&
          (failed || conn->replies == cfg.frames_per_conn)) {
        if (failed) {
          ++result.dropped;
        }
        conn->done = true;
        ++done_count;
        poller->remove(conn->fd.get());
        by_fd[static_cast<std::size_t>(conn->fd.get())] = nullptr;
        conn->fd.reset();
      }
    }
  }
  result.dropped += conns.size() - done_count;
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  conns.clear();
  server.stop();

  if (!latencies_us.empty()) {
    std::sort(latencies_us.begin(), latencies_us.end());
    const auto at = [&](double q) {
      const std::size_t i = std::min(
          latencies_us.size() - 1,
          static_cast<std::size_t>(q * static_cast<double>(latencies_us.size())));
      return latencies_us[i];
    };
    result.p50_us = at(0.50);
    result.p99_us = at(0.99);
    result.p999_us = at(0.999);
  }
  return result;
}

void BM_ServeSweep(benchmark::State& state) {
  const auto requested = static_cast<std::size_t>(state.range(0));
  const std::size_t cap = fd_capped_connections();
  SweepConfig cfg;
  cfg.connections = std::min(requested, cap);
  if (cfg.connections < requested) {
    std::fprintf(stderr,
                 "sweep: fd limit caps %zu requested connections at %zu\n",
                 requested, cfg.connections);
  }
  // Scale per-connection work down as the population grows so every row
  // finishes in comparable wall time (floor of 2 windows' worth).
  cfg.records_per_frame = 4;
  cfg.frames_per_conn = std::max<std::size_t>(
      2, 65536 / (cfg.connections * cfg.records_per_frame));
  const ThreePhasePredictor tpp;

  SweepResult r;
  for (auto _ : state) {
    r = run_sweep(cfg, tpp);
  }
  state.SetLabel(to_string(poller_backend_from_env()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(r.records_submitted));
  state.counters["connections"] = static_cast<double>(r.connections);
  state.counters["records"] = static_cast<double>(r.records_submitted);
  state.counters["rps"] =
      static_cast<double>(r.records_accepted) / std::max(r.elapsed_s, 1e-9);
  state.counters["p50_us"] = static_cast<double>(r.p50_us);
  state.counters["p99_us"] = static_cast<double>(r.p99_us);
  state.counters["p999_us"] = static_cast<double>(r.p999_us);
  state.counters["busy"] = static_cast<double>(r.busy_replies);
  state.counters["dropped"] = static_cast<double>(r.dropped);
  state.counters["desynced"] = static_cast<double>(r.desynced);
}

// ---- throughput probes and the committed poll() baseline -----------------

/// Records/s of a pipelined submit replay against the given backend —
/// the number the smoke gate compares across backends and against the
/// committed baseline.
double throughput_probe(PollerBackend backend, const ThreePhasePredictor& tpp) {
  const Workload& load = workload();
  std::vector<WireRecord> all;
  for (const auto& stream : load.streams) {
    all.insert(all.end(), stream.begin(), stream.end());
  }
  ServerOptions options;
  options.backend = backend;
  options.shards.shard_count = 2;
  options.shards.queue_capacity = 4096;
  options.shards.predictor_factory = [&tpp] {
    return tpp.make_predictor(Method::kEveryFailure);
  };
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  const auto start = std::chrono::steady_clock::now();
  client.submit_all_pipelined(1, all, /*batch_size=*/64, /*window=*/8);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  client.shutdown_server();
  server.stop();
  return static_cast<double>(all.size()) / std::max(elapsed, 1e-9);
}

/// Minimal field extraction — the baseline file is flat JSON this
/// binary itself wrote.
double baseline_records_per_sec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0.0;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const std::string key = "\"records_per_sec\":";
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) {
    return 0.0;
  }
  return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

int write_baseline(const std::string& path,
                   const ThreePhasePredictor& tpp) {
  const double rps = throughput_probe(PollerBackend::kPoll, tpp);
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "write-baseline: cannot open %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"name\": \"serve_poll_baseline\",\n"
      << "  \"backend\": \"poll\",\n"
      << "  \"workload\": \"" << (g_smoke ? "smoke" : "full") << "\",\n"
      << "  \"records_per_sec\": " << static_cast<std::uint64_t>(rps) << "\n"
      << "}\n";
  std::printf("write-baseline: poll oracle %.0f records/s -> %s\n", rps,
              path.c_str());
  return 0;
}

// ---- CI gates ------------------------------------------------------------

/// One end-to-end pass with correctness checks, then the epoll-vs-poll
/// throughput floor — the CI smoke gate.
int run_smoke() {
  const ThreePhasePredictor tpp;
  const Workload& load = workload();
  ServerOptions options;
  options.shards.shard_count = 2;
  options.shards.queue_capacity = 512;
  options.shards.predictor_factory = [&tpp] {
    return tpp.make_predictor(Method::kEveryFailure);
  };
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  std::size_t warnings = 0;
  for (std::size_t s = 0; s < load.streams.size(); ++s) {
    client.submit_all(s, load.streams[s]);
    warnings += client.poll_warnings(s).size();
  }
  const std::string stats = client.stats_json();
  client.shutdown_server();
  server.stop();
  if (warnings == 0) {
    std::fprintf(stderr, "smoke: no warnings delivered\n");
    return 1;
  }
  const std::string want =
      "\"serve.records_in\":" + std::to_string(load.total_records);
  if (stats.find(want) == std::string::npos) {
    std::fprintf(stderr, "smoke: records_in mismatch (wanted %s) in %s\n",
                 want.c_str(), stats.c_str());
    return 1;
  }
  // Throughput floor (satellite of the epoll tentpole): the epoll
  // backend must not serve slower than the poll() oracle. Both probes
  // run on this machine back to back; the committed baseline is a
  // second reference, and the floor takes the smaller of the two so a
  // slower CI box gates against its own live poll number. The margin
  // absorbs scheduler noise, not regressions — losing to poll() by
  // >15% means the event loop broke.
  const double poll_rps = throughput_probe(PollerBackend::kPoll, tpp);
  const double epoll_rps = throughput_probe(PollerBackend::kEpoll, tpp);
  const double committed = baseline_records_per_sec(BGL_SERVE_BASELINE_PATH);
  double floor = poll_rps;
  if (committed > 0.0) {
    floor = std::min(floor, committed);
  } else {
    std::fprintf(stderr, "smoke: note: no committed baseline at %s\n",
                 BGL_SERVE_BASELINE_PATH);
  }
  std::printf(
      "smoke: throughput epoll=%.0f poll=%.0f committed-baseline=%.0f "
      "records/s\n",
      epoll_rps, poll_rps, committed);
  if (epoll_rps < 0.85 * floor) {
    std::fprintf(stderr,
                 "smoke: epoll throughput %.0f below floor %.0f (poll %.0f, "
                 "baseline %.0f)\n",
                 epoll_rps, 0.85 * floor, poll_rps, committed);
    return 1;
  }
  std::printf("smoke: %zu records, %zu warnings served OK\n",
              load.total_records, warnings);
  return 0;
}

/// The sweep's own CI gate: a few hundred concurrent connections must
/// complete with zero dropped/desynced/busy frames and a sane p99.
int run_sweep_smoke() {
  const ThreePhasePredictor tpp;
  SweepConfig cfg;
  cfg.connections = std::min<std::size_t>(256, fd_capped_connections());
  cfg.frames_per_conn = 4;
  cfg.records_per_frame = 4;
  const SweepResult r = run_sweep(cfg, tpp);
  std::printf(
      "sweep-smoke [%s]: %zu conns, %zu records, %.2fs, p50=%luus "
      "p99=%luus p999=%luus, busy=%zu dropped=%zu desynced=%zu\n",
      to_string(poller_backend_from_env()), r.connections,
      r.records_submitted, r.elapsed_s,
      static_cast<unsigned long>(r.p50_us),
      static_cast<unsigned long>(r.p99_us),
      static_cast<unsigned long>(r.p999_us), r.busy_replies, r.dropped,
      r.desynced);
  int rc = 0;
  if (r.dropped != 0 || r.desynced != 0 || r.busy_replies != 0) {
    std::fprintf(stderr, "sweep-smoke: frame anomalies detected\n");
    rc = 1;
  }
  if (r.records_accepted != r.records_submitted) {
    std::fprintf(stderr, "sweep-smoke: accepted %llu != submitted %zu\n",
                 static_cast<unsigned long long>(r.records_accepted),
                 r.records_submitted);
    rc = 1;
  }
  // Generous: loopback p99 is single-digit milliseconds even on a busy
  // 1-CPU CI box; half a second means the loop starved someone.
  if (r.p99_us > 500000) {
    std::fprintf(stderr, "sweep-smoke: p99 %lu us exceeds 500ms bound\n",
                 static_cast<unsigned long>(r.p99_us));
    rc = 1;
  }
  return rc;
}

// ---- chaos survival run (EXPERIMENTS.md X12) -----------------------------

/// Resident-set sample from /proc/self/status, in KiB (0 if unreadable).
std::size_t vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

/// Limits tight enough that every persona trips its own defense within
/// one short run, loose enough that the paced healthy lanes never do.
ServerOptions chaos_server_options(const ThreePhasePredictor& tpp) {
  ServerOptions options;
  options.listen_backlog = 1024;
  options.shards.shard_count = 2;
  options.shards.queue_capacity = 1u << 16;
  options.shards.predictor_factory = [&tpp] {
    return tpp.make_predictor(Method::kEveryFailure);
  };
  ServerLimits& lim = options.limits;
  lim.max_connections = 64;
  lim.max_total_outbox_bytes = 8u << 20;
  lim.max_connection_outbox_bytes = 256u << 10;
  // Stall strictly shorter than idle: a stalled reader stops completing
  // frames too, so both timers arm together — the stall timeout must win
  // that race or every stalled connection is misdiagnosed as idle.
  lim.idle_timeout_micros = 500'000;
  lim.write_stall_timeout_micros = 200'000;
  lim.drain_deadline_micros = 2'000'000;
  lim.sndbuf_bytes = 16 * 1024;
  lim.session.max_submit_frames_per_window = 96;
  lim.session.window_micros = 100'000;
  return options;
}

/// What one healthy lane lived through. Written by the lane thread,
/// read by the driver only after join.
struct LaneReport {
  std::vector<std::uint64_t> clean_us;  ///< per-slice latency, clean phase
  std::vector<std::uint64_t> chaos_us;  ///< per-slice latency, storm phase
  std::uint64_t submitted = 0;          ///< records fully acknowledged
  std::size_t reconnects = 0;
  bool failed = false;
  std::string error;
};

/// One healthy pipelined client: a persistent connection opened BEFORE
/// the storm (admission shedding only affects new arrivals), submitting
/// paced slices small enough to stay under the per-connection inbound
/// budget. If the connection dies as storm collateral, the lane
/// reconnects and resumes the slice from the server's STREAM_STATUS
/// watermark — its exactly-once accounting is re-derived, never guessed.
void run_latency_lane(std::uint16_t port, std::uint64_t stream_id,
                      const std::vector<WireRecord>& pool,
                      const std::atomic<int>& phase, LaneReport& report) {
  constexpr std::size_t kSlice = 64;
  ClientOptions copts;
  copts.connect_timeout_micros = 2'000'000;
  copts.io_timeout_micros = 5'000'000;
  try {
    auto client = std::make_unique<Client>(Client::connect(port, copts));
    std::size_t cursor = 0;
    while (phase.load() != 2) {
      std::vector<WireRecord> slice;
      slice.reserve(kSlice);
      for (std::size_t i = 0; i < kSlice; ++i) {
        slice.push_back(pool[(cursor + i) % pool.size()]);
      }
      cursor += kSlice;
      const auto t0 = std::chrono::steady_clock::now();
      std::uint64_t slice_done = 0;  // records of THIS slice already landed
      std::size_t attempts = 0;
      while (!slice.empty()) {
        try {
          client->submit_all_pipelined(stream_id, slice, /*batch_size=*/16,
                                       /*window=*/4);
          slice.clear();
        } catch (const Error&) {
          ++report.reconnects;
          if (++attempts > 100) {
            throw;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          try {
            client = std::make_unique<Client>(Client::connect(port, copts));
          } catch (const Error&) {
            continue;  // shed under storm — back off and try again
          }
          const std::uint64_t mark = client->stream_accepted(stream_id);
          const std::uint64_t landed = mark - report.submitted;
          slice.erase(slice.begin(),
                      slice.begin() +
                          static_cast<std::ptrdiff_t>(landed - slice_done));
          slice_done = landed;
        }
      }
      report.submitted += kSlice;
      const auto us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (phase.load() == 0) {
        report.clean_us.push_back(us);
      } else {
        report.chaos_us.push_back(us);
      }
      // ~4 pipelined frames per 8ms slice ≈ 50 submit frames per 100ms
      // window — under the 96-frame budget with room for both lanes.
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
    }
  } catch (const Error& e) {
    report.failed = true;
    report.error = e.what();
  }
}

std::uint64_t percentile_us(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) {
    return 0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

/// The chaos gate: clean phase (overload counters must stay zero) →
/// storm phase (six personas + a resilient bulk submitter racing them)
/// → survival probe + exactly-once verification + p99/RSS bounds.
/// Emits BENCH_chaos.json either way; returns nonzero if any gate fails.
int run_chaos() {
  const ThreePhasePredictor tpp;
  const Workload& load = workload();
  std::vector<WireRecord> pool;
  for (const auto& stream : load.streams) {
    pool.insert(pool.end(), stream.begin(), stream.end());
  }
  if (pool.empty()) {
    std::fprintf(stderr, "chaos: empty workload\n");
    return 1;
  }
  const std::uint64_t clean_micros = g_smoke ? 1'000'000 : 2'500'000;
  const std::uint64_t chaos_micros = g_smoke ? 1'200'000 : 3'000'000;

  ServerOptions options = chaos_server_options(tpp);
  Server server(options);
  server.start();
  MetricsRegistry& reg = server.metrics();
  static const char* const kOverloadCounters[] = {
      "serve.accepts_shed",        "serve.slow_readers_evicted",
      "serve.idle_timeouts",       "serve.write_stall_timeouts",
      "serve.budget_rejected",
  };
  constexpr std::size_t kCounterCount = std::size(kOverloadCounters);

  const std::size_t rss_before_kb = vm_rss_kb();

  std::atomic<int> phase{0};  // 0 clean, 1 storm, 2 stop
  constexpr std::size_t kLaneCount = 2;
  LaneReport lanes[kLaneCount];
  std::vector<std::thread> lane_threads;
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    lane_threads.emplace_back(run_latency_lane, server.port(),
                              static_cast<std::uint64_t>(i + 1),
                              std::cref(pool), std::cref(phase),
                              std::ref(lanes[i]));
  }

  // Phase 1: clean. Only well-behaved clients — every overload counter
  // must still read zero when the phase ends.
  std::this_thread::sleep_for(std::chrono::microseconds(clean_micros));
  std::uint64_t clean_counts[kCounterCount];
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    clean_counts[i] = reg.counter(kOverloadCounters[i]).value();
  }
  phase.store(1);

  // Phase 2: the storm, with a resilient bulk submitter racing it.
  const std::size_t resilient_count = g_smoke ? 1536 : 4096;
  std::vector<WireRecord> rrecords;
  rrecords.reserve(resilient_count);
  for (std::size_t i = 0; i < resilient_count; ++i) {
    rrecords.push_back(pool[i % pool.size()]);
  }
  constexpr std::uint64_t kResilientStream = 91;
  ResilientStats rstats;
  bool resilient_failed = false;
  std::string resilient_error;
  std::thread resilient([&] {
    try {
      ResilientOptions ropts;
      ropts.batch_size = 16;
      ropts.window = 4;
      ropts.max_attempts = 40;
      ropts.initial_backoff_micros = 5'000;
      ropts.max_backoff_micros = 200'000;
      ropts.backoff_seed = 17;
      rstats =
          submit_all_resilient(server.port(), kResilientStream, rrecords,
                               ropts);
    } catch (const Error& e) {
      resilient_failed = true;
      resilient_error = e.what();
    }
  });

  ChaosOptions chaos;
  chaos.port = server.port();
  chaos.duration_micros = chaos_micros;
  ChaosStats persona_stats[6];
  const char* const persona_names[6] = {
      "slowloris",        "stalled_reader", "rst_storm",
      "connection_storm", "garbage_flooder", "greedy_submitter",
  };
  std::vector<std::thread> personas;
  personas.emplace_back([&] {
    ChaosOptions o = chaos;
    o.connections = 4;
    o.seed = 101;
    persona_stats[0] = run_slowloris(o);
  });
  personas.emplace_back([&] {
    ChaosOptions o = chaos;
    o.connections = 6;
    o.requests_per_connection = 128;
    o.seed = 102;
    persona_stats[1] = run_stalled_reader(o);
  });
  // The storm personas start late: they exist to exhaust the admission
  // ceiling, and if they win the connect race the slowloris/stalled/
  // greedy personas get shed at accept instead of tripping the defense
  // each one is designed to trigger.
  constexpr std::uint64_t kStormDelayMicros = 250'000;
  personas.emplace_back([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(kStormDelayMicros));
    ChaosOptions o = chaos;
    o.connections = 24;
    o.seed = 103;
    persona_stats[2] = run_rst_storm(o);
  });
  personas.emplace_back([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(kStormDelayMicros));
    ChaosOptions o = chaos;
    o.connections = 160;
    o.seed = 104;
    persona_stats[3] = run_connection_storm(o);
  });
  personas.emplace_back([&] {
    ChaosOptions o = chaos;
    o.connections = 6;
    o.requests_per_connection = 4;
    o.seed = 105;
    persona_stats[4] = run_garbage_flooder(o);
  });
  personas.emplace_back([&] {
    ChaosOptions o = chaos;
    o.connections = 2;
    o.seed = 106;
    o.stream_id_base = std::uint64_t{2} << 32;
    persona_stats[5] = run_greedy_submitter(o);
  });
  for (std::thread& t : personas) {
    t.join();
  }
  resilient.join();
  phase.store(2);
  for (std::thread& t : lane_threads) {
    t.join();
  }

  std::uint64_t chaos_counts[kCounterCount];
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    chaos_counts[i] = reg.counter(kOverloadCounters[i]).value();
  }

  // Survival probe: a fresh client must get full service after the
  // storm, the lanes' and the resilient stream's lifetime accepted
  // counts must equal what was submitted (zero drops, zero dups), and
  // the graceful drain path (SHUTDOWN) must still work.
  bool survived = true;
  std::uint64_t lane_marks[kLaneCount] = {};
  std::uint64_t resilient_mark = 0;
  try {
    ClientOptions vopts;
    vopts.connect_timeout_micros = 2'000'000;
    vopts.io_timeout_micros = 5'000'000;
    Client verifier = Client::connect(server.port(), vopts);
    survived = !verifier.stats_json().empty();
    for (std::size_t i = 0; i < kLaneCount; ++i) {
      lane_marks[i] = verifier.stream_accepted(i + 1);
    }
    resilient_mark = verifier.stream_accepted(kResilientStream);
    verifier.shutdown_server();
  } catch (const Error& e) {
    survived = false;
    std::fprintf(stderr, "chaos: survival probe failed: %s\n", e.what());
  }
  server.stop();
  const std::size_t rss_after_kb = vm_rss_kb();

  // ---- gates ----
  int rc = 0;
  std::uint64_t healthy_records = 0;
  std::size_t healthy_reconnects = 0;
  std::vector<std::uint64_t> clean_lat;
  std::vector<std::uint64_t> chaos_lat;
  for (std::size_t i = 0; i < kLaneCount; ++i) {
    healthy_records += lanes[i].submitted;
    healthy_reconnects += lanes[i].reconnects;
    clean_lat.insert(clean_lat.end(), lanes[i].clean_us.begin(),
                     lanes[i].clean_us.end());
    chaos_lat.insert(chaos_lat.end(), lanes[i].chaos_us.begin(),
                     lanes[i].chaos_us.end());
    if (lanes[i].failed) {
      std::fprintf(stderr, "chaos: healthy lane %zu died: %s\n", i,
                   lanes[i].error.c_str());
      rc = 1;
    } else if (lane_marks[i] != lanes[i].submitted) {
      std::fprintf(stderr,
                   "chaos: lane %zu accepted %llu != submitted %llu "
                   "(drop or duplicate)\n",
                   i, static_cast<unsigned long long>(lane_marks[i]),
                   static_cast<unsigned long long>(lanes[i].submitted));
      rc = 1;
    }
  }
  if (resilient_failed) {
    std::fprintf(stderr, "chaos: resilient submitter gave up: %s\n",
                 resilient_error.c_str());
    rc = 1;
  } else if (resilient_mark != rrecords.size()) {
    std::fprintf(stderr,
                 "chaos: resilient stream accepted %llu != submitted %zu\n",
                 static_cast<unsigned long long>(resilient_mark),
                 rrecords.size());
    rc = 1;
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (clean_counts[i] != 0) {
      std::fprintf(stderr, "chaos: %s = %llu during the CLEAN phase\n",
                   kOverloadCounters[i],
                   static_cast<unsigned long long>(clean_counts[i]));
      rc = 1;
    }
    if (chaos_counts[i] - clean_counts[i] == 0) {
      std::fprintf(stderr,
                   "chaos: %s never fired — its persona left no trace\n",
                   kOverloadCounters[i]);
      rc = 1;
    }
  }
  const std::uint64_t clean_p50 = percentile_us(clean_lat, 0.50);
  const std::uint64_t clean_p99 = percentile_us(clean_lat, 0.99);
  const std::uint64_t chaos_p50 = percentile_us(chaos_lat, 0.50);
  const std::uint64_t chaos_p99 = percentile_us(chaos_lat, 0.99);
  // The two *performance* gates (p99 bound, RSS ceiling) only bind in
  // uninstrumented builds: ASan's shadow/quarantine makes VmRSS track
  // the sanitizer rather than server buffering, and TSan's ~10×
  // serialization turns storm latency into a measurement of the
  // instrumentation. The sanitizer CI jobs still run every functional
  // gate (counters, exactly-once, survival) — the release job owns the
  // perf bounds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kPerfGatesBind = false;
#else
  constexpr bool kPerfGatesBind = true;
#endif
  // 5× the clean baseline, with an absolute floor so a microsecond-fast
  // clean phase on an idle box doesn't turn scheduler noise into a
  // failure.
  const std::uint64_t p99_bound = std::max<std::uint64_t>(5 * clean_p99,
                                                          250'000);
  if (chaos_lat.empty() || chaos_p99 > p99_bound) {
    std::fprintf(stderr,
                 "chaos: healthy p99 %llu us breaches bound %llu us%s\n",
                 static_cast<unsigned long long>(chaos_p99),
                 static_cast<unsigned long long>(p99_bound),
                 kPerfGatesBind ? "" : " [ignored: sanitizer build]");
    if (chaos_lat.empty() || kPerfGatesBind) {
      rc = 1;
    }
  }
  // The outbox ceilings bound what the server may buffer (8 MiB total);
  // the allowance on top covers the harness's own record pools and
  // allocator retention, not server growth.
  const std::size_t rss_allowance_kb = 64 * 1024;
  if (rss_after_kb > rss_before_kb + rss_allowance_kb) {
    std::fprintf(stderr, "chaos: RSS grew %zu KiB -> %zu KiB (> %zu KiB)%s\n",
                 rss_before_kb, rss_after_kb, rss_allowance_kb,
                 kPerfGatesBind ? "" : " [ignored: sanitizer build]");
    if (kPerfGatesBind) {
      rc = 1;
    }
  }
  if (!survived) {
    rc = 1;
  }

  for (std::size_t i = 0; i < 6; ++i) {
    const ChaosStats& s = persona_stats[i];
    std::printf(
        "chaos: persona %-16s opened=%zu refused=%zu typed_rejections=%zu "
        "server_closes=%zu frames=%zu bytes=%zu\n",
        persona_names[i], s.connections_opened, s.connections_refused,
        s.typed_rejections, s.server_closes, s.frames_sent, s.bytes_sent);
  }
  std::printf(
      "chaos [%s]: healthy=%llu records (%zu reconnects) "
      "clean p50/p99=%llu/%llu us, storm p50/p99=%llu/%llu us; "
      "shed=%llu evicted=%llu idle=%llu stalled=%llu budget=%llu; "
      "resilient reconnects=%zu resumed=%llu; rss %zu->%zu KiB: %s\n",
      to_string(poller_backend_from_env()),
      static_cast<unsigned long long>(healthy_records), healthy_reconnects,
      static_cast<unsigned long long>(clean_p50),
      static_cast<unsigned long long>(clean_p99),
      static_cast<unsigned long long>(chaos_p50),
      static_cast<unsigned long long>(chaos_p99),
      static_cast<unsigned long long>(chaos_counts[0]),
      static_cast<unsigned long long>(chaos_counts[1]),
      static_cast<unsigned long long>(chaos_counts[2]),
      static_cast<unsigned long long>(chaos_counts[3]),
      static_cast<unsigned long long>(chaos_counts[4]),
      rstats.reconnects,
      static_cast<unsigned long long>(rstats.resumed_records), rss_before_kb,
      rss_after_kb, rc == 0 ? "PASS" : "FAIL");

  std::ofstream out("BENCH_chaos.json");
  out << "{\n"
      << "  \"name\": \"serve_chaos\",\n"
      << "  \"backend\": \"" << to_string(poller_backend_from_env()) << "\",\n"
      << "  \"workload\": \"" << (g_smoke ? "smoke" : "full") << "\",\n"
      << "  \"healthy_records\": " << healthy_records << ",\n"
      << "  \"healthy_reconnects\": " << healthy_reconnects << ",\n"
      << "  \"clean_p50_us\": " << clean_p50 << ",\n"
      << "  \"clean_p99_us\": " << clean_p99 << ",\n"
      << "  \"chaos_p50_us\": " << chaos_p50 << ",\n"
      << "  \"chaos_p99_us\": " << chaos_p99 << ",\n"
      << "  \"accepts_shed\": " << chaos_counts[0] << ",\n"
      << "  \"slow_readers_evicted\": " << chaos_counts[1] << ",\n"
      << "  \"idle_timeouts\": " << chaos_counts[2] << ",\n"
      << "  \"write_stall_timeouts\": " << chaos_counts[3] << ",\n"
      << "  \"budget_rejected\": " << chaos_counts[4] << ",\n"
      << "  \"resilient_records\": " << rrecords.size() << ",\n"
      << "  \"resilient_reconnects\": " << rstats.reconnects << ",\n"
      << "  \"resilient_failed_attempts\": " << rstats.failed_attempts
      << ",\n"
      << "  \"resilient_busy_rounds\": " << rstats.busy_rounds << ",\n"
      << "  \"resilient_resumed_records\": " << rstats.resumed_records
      << ",\n"
      << "  \"rss_before_kb\": " << rss_before_kb << ",\n"
      << "  \"rss_after_kb\": " << rss_after_kb << ",\n"
      << "  \"pass\": " << (rc == 0 ? "true" : "false") << "\n"
      << "}\n";
  return rc;
}

}  // namespace

void BM_ServeLoadgen(benchmark::State& state) {
  const auto shard_count = static_cast<std::size_t>(state.range(0));
  const auto worker_threads = static_cast<std::size_t>(state.range(1));
  const ThreePhasePredictor tpp;
  const Workload& load = workload();

  std::size_t warnings = 0;
  std::size_t busy_rounds = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  for (auto _ : state) {
    ServerOptions options;
    options.shards.shard_count = shard_count;
    options.shards.worker_threads = worker_threads;
    options.shards.queue_capacity = 2048;
    options.shards.predictor_factory = [&tpp] {
      return tpp.make_predictor(Method::kEveryFailure);
    };
    Server server(options);
    server.start();
    Client client = Client::connect(server.port());
    warnings = 0;
    busy_rounds = 0;
    for (std::size_t s = 0; s < load.streams.size(); ++s) {
      busy_rounds += client.submit_all(s, load.streams[s]);
    }
    for (std::size_t s = 0; s < load.streams.size(); ++s) {
      warnings += client.poll_warnings(s).size();
    }
    // Same process as the server: read the latency distribution straight
    // from its registry (lookup by name returns the live instrument).
    Histogram& age = server.metrics().histogram("serve.warning_age_micros");
    p50 = age.quantile(0.5);
    p99 = age.quantile(0.99);
    client.shutdown_server();
    server.stop();
    benchmark::DoNotOptimize(warnings);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(load.total_records));
  state.counters["records"] = static_cast<double>(load.total_records);
  state.counters["streams"] = static_cast<double>(load.streams.size());
  state.counters["warnings"] = static_cast<double>(warnings);
  state.counters["busy_rounds"] = static_cast<double>(busy_rounds);
  state.counters["p50_warning_age_us"] = static_cast<double>(p50);
  state.counters["p99_warning_age_us"] = static_cast<double>(p99);
}

// Args: {shard_count, worker_threads}. The 1-shard/0-worker row is the
// single-threaded floor; extra shards measure routing overhead and, with
// workers, shard-parallel drains.
BENCHMARK(BM_ServeLoadgen)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 2})
    ->Unit(benchmark::kMillisecond);

// The 1→10k concurrent-connection latency sweep (EXPERIMENTS.md X11).
// One iteration per row: a row IS a full population lifecycle, and
// run_sweep already reports exact quantiles from every sample.
BENCHMARK(BM_ServeSweep)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  // Old google-benchmark wants a plain double for min_time.
  static char min_time[] = "--benchmark_min_time=0.05";
  static char filter[] = "--benchmark_filter=BM_ServeLoadgen/1/0$";
  bool sweep_smoke = false;
  bool baseline = false;
  bool chaos = false;
  bool chaos_smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      continue;
    }
    if (std::strcmp(argv[i], "--sweep-smoke") == 0) {
      sweep_smoke = true;
      continue;
    }
    if (std::strcmp(argv[i], "--write-baseline") == 0) {
      baseline = true;
      continue;
    }
    if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
      continue;
    }
    if (std::strcmp(argv[i], "--chaos-smoke") == 0) {
      chaos_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (chaos || chaos_smoke) {
    if (chaos_smoke) {
      g_smoke = true;  // CI-sized phases and workload
    }
    return run_chaos();
  }
  if (baseline) {
    const ThreePhasePredictor tpp;
    return write_baseline(BGL_SERVE_BASELINE_PATH, tpp);
  }
  if (sweep_smoke) {
    // Cheap workload for the gate; the full sweep scales itself.
    g_smoke = true;
    return run_sweep_smoke();
  }
  if (g_smoke) {
    const int rc = run_smoke();
    if (rc != 0) {
      return rc;
    }
    // Still emit BENCH_serve.json, from the cheapest config only.
    args.push_back(min_time);
    args.push_back(filter);
  }
  return bglpred::bench::run_benchmark_driver(
      "serve", static_cast<int>(args.size()), args.data());
}
