// Deterministic load generator for the sharded prediction service
// (EXPERIMENTS.md X9).
//
// Replays simgen logs as interleaved client streams through a real
// loopback server — client -> socket -> session -> shards -> engines —
// and reports end-to-end records/s plus the p50/p99 warning age (the
// time a warning sits between the engine emitting it and a poll
// delivering it, read from the server's own histogram; server and
// generator share the process, so no cross-process clock games).
//
//   $ ./serve_loadgen                  # full google-benchmark sweep
//   $ ./serve_loadgen --smoke          # CI smoke: one tiny config, with
//                                      # result sanity checks, still
//                                      # emitting BENCH_serve.json
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/three_phase.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "simgen/generator.hpp"

using namespace bglpred;
using namespace bglpred::serve;

namespace {

/// --smoke shrinks the workload; set in main() before benchmarks run.
bool g_smoke = false;

struct Workload {
  std::vector<std::vector<WireRecord>> streams;
  std::size_t total_records = 0;
};

/// Generated once per process: `streams` interleaved record sequences
/// with their raw entry text, byte-reproducible across runs.
const Workload& workload() {
  static const Workload w = [] {
    Workload out;
    const double scale = g_smoke ? 0.01 : 0.05;
    const std::size_t streams = g_smoke ? 2 : 8;
    GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(scale);
    out.streams.resize(streams);
    for (std::size_t i = 0; i < g.log.records().size(); ++i) {
      const RasRecord& rec = g.log.records()[i];
      out.streams[i % streams].push_back(WireRecord{rec, g.log.text_of(rec)});
      ++out.total_records;
    }
    return out;
  }();
  return w;
}

void BM_ServeLoadgen(benchmark::State& state) {
  const auto shard_count = static_cast<std::size_t>(state.range(0));
  const auto worker_threads = static_cast<std::size_t>(state.range(1));
  const ThreePhasePredictor tpp;
  const Workload& load = workload();

  std::size_t warnings = 0;
  std::size_t busy_rounds = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  for (auto _ : state) {
    ServerOptions options;
    options.shards.shard_count = shard_count;
    options.shards.worker_threads = worker_threads;
    options.shards.queue_capacity = 2048;
    options.shards.predictor_factory = [&tpp] {
      return tpp.make_predictor(Method::kEveryFailure);
    };
    Server server(options);
    server.start();
    Client client = Client::connect(server.port());
    warnings = 0;
    busy_rounds = 0;
    for (std::size_t s = 0; s < load.streams.size(); ++s) {
      busy_rounds += client.submit_all(s, load.streams[s]);
    }
    for (std::size_t s = 0; s < load.streams.size(); ++s) {
      warnings += client.poll_warnings(s).size();
    }
    // Same process as the server: read the latency distribution straight
    // from its registry (lookup by name returns the live instrument).
    Histogram& age = server.metrics().histogram("serve.warning_age_micros");
    p50 = age.quantile(0.5);
    p99 = age.quantile(0.99);
    client.shutdown_server();
    server.stop();
    benchmark::DoNotOptimize(warnings);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(load.total_records));
  state.counters["records"] = static_cast<double>(load.total_records);
  state.counters["streams"] = static_cast<double>(load.streams.size());
  state.counters["warnings"] = static_cast<double>(warnings);
  state.counters["busy_rounds"] = static_cast<double>(busy_rounds);
  state.counters["p50_warning_age_us"] = static_cast<double>(p50);
  state.counters["p99_warning_age_us"] = static_cast<double>(p99);
}

/// One end-to-end pass with correctness checks — the CI smoke gate.
int run_smoke() {
  const ThreePhasePredictor tpp;
  const Workload& load = workload();
  ServerOptions options;
  options.shards.shard_count = 2;
  options.shards.queue_capacity = 512;
  options.shards.predictor_factory = [&tpp] {
    return tpp.make_predictor(Method::kEveryFailure);
  };
  Server server(options);
  server.start();
  Client client = Client::connect(server.port());
  std::size_t warnings = 0;
  for (std::size_t s = 0; s < load.streams.size(); ++s) {
    client.submit_all(s, load.streams[s]);
    warnings += client.poll_warnings(s).size();
  }
  const std::string stats = client.stats_json();
  client.shutdown_server();
  server.stop();
  if (warnings == 0) {
    std::fprintf(stderr, "smoke: no warnings delivered\n");
    return 1;
  }
  const std::string want =
      "\"serve.records_in\":" + std::to_string(load.total_records);
  if (stats.find(want) == std::string::npos) {
    std::fprintf(stderr, "smoke: records_in mismatch (wanted %s) in %s\n",
                 want.c_str(), stats.c_str());
    return 1;
  }
  std::printf("smoke: %zu records, %zu warnings served OK\n",
              load.total_records, warnings);
  return 0;
}

}  // namespace

// Args: {shard_count, worker_threads}. The 1-shard/0-worker row is the
// single-threaded floor; extra shards measure routing overhead and, with
// workers, shard-parallel drains.
BENCHMARK(BM_ServeLoadgen)
    ->Args({1, 0})
    ->Args({4, 0})
    ->Args({4, 2})
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  // Old google-benchmark wants a plain double for min_time.
  static char min_time[] = "--benchmark_min_time=0.05";
  static char filter[] = "--benchmark_filter=BM_ServeLoadgen/1/0$";
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (g_smoke) {
    const int rc = run_smoke();
    if (rc != 0) {
      return rc;
    }
    // Still emit BENCH_serve.json, from the cheapest config only.
    args.push_back(min_time);
    args.push_back(filter);
  }
  return bglpred::bench::run_benchmark_driver(
      "serve", static_cast<int>(args.size()), args.data());
}
