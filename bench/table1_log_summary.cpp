// Reproduces Table 1: "Summary of RAS Logs at SDSC and ANL".
//
//               |      ANL |     SDSC
//   Start Date  | 1/21/2005| 12/6/2004
//   End Date    | 4/28/2006| 2/21/2006
//   No. of Recs | 4,172,359|   428,953
//   Log Size    |     5 GB |   540 MB
//
// The measured column is the synthetic generator's raw output; sizes are
// estimated from the serialized line format.
//
// Usage: table1_log_summary [--scale=1.0]

#include "bench_common.hpp"
#include "raslog/io.hpp"

using namespace bglpred;
using namespace bglpred::bench;

namespace {

// Average serialized record size, sampled from the first records.
double avg_line_bytes(const RasLog& log) {
  const std::size_t n = std::min<std::size_t>(log.size(), 2000);
  if (n == 0) {
    return 0.0;
  }
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += format_record(log, log.records()[i]).size() + 1;
  }
  return static_cast<double>(total) / static_cast<double>(n);
}

std::string human_size(double bytes) {
  if (bytes >= 1e9) {
    return TextTable::num(bytes / 1e9, 2) + " GB";
  }
  return TextTable::num(bytes / 1e6, 0) + " MB";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  print_header("Table 1", "Summary of RAS logs at ANL and SDSC", scale);

  TextTable table;
  table.set_header({"", "ANL (paper)", "ANL (measured)", "SDSC (paper)",
                    "SDSC (measured)"});

  const PreparedLog& anl = prepared_log("ANL", scale);
  const PreparedLog& sdsc = prepared_log("SDSC", scale);

  table.add_row({"Start Date", "1/21/2005", format_time(anl.span.begin),
                 "12/6/2004", format_time(sdsc.span.begin)});
  table.add_row({"End Date", "4/28/2006", format_time(anl.span.end),
                 "2/21/2006", format_time(sdsc.span.end)});
  table.add_row(
      {"No. of Records",
       TextTable::count(static_cast<std::int64_t>(4172359 * scale)),
       TextTable::count(static_cast<std::int64_t>(anl.raw_records)),
       TextTable::count(static_cast<std::int64_t>(428953 * scale)),
       TextTable::count(static_cast<std::int64_t>(sdsc.raw_records))});
  // The paper's 5 GB / 540 MB are DB2 on-disk sizes; we estimate the
  // flat-text serialization (smaller per record, same ordering).
  table.add_row({"Log Size (text est.)", "5 GB",
                 human_size(static_cast<double>(anl.raw_records) *
                            avg_line_bytes(anl.log)),
                 "540 MB",
                 human_size(static_cast<double>(sdsc.raw_records) *
                            avg_line_bytes(sdsc.log))});
  table.add_row(
      {"Unique events (Phase 1)", "-",
       TextTable::count(static_cast<std::int64_t>(anl.phase1.unique_events)),
       "-",
       TextTable::count(
           static_cast<std::int64_t>(sdsc.phase1.unique_events))});
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
