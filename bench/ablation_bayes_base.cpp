// Ablation (extension): a third base predictor under the meta-learner.
//
// The paper's future work asks for the meta-learning mechanism to be
// "further examined for advancing failure prediction". This driver adds
// the naive-Bayes base (related work [14]'s model family) to the stack
// and compares: each base alone, the paper's two-base meta, and the
// three-base meta.
//
// Usage: ablation_bayes_base [--scale=0.3] [--folds=10]

#include "bench_common.hpp"
#include "predict/bayes_predictor.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.3);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Ablation (extension)",
               "Naive-Bayes third base under the meta-learner", scale);

  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    ThreePhaseOptions opt = paper_options(profile, 30 * kMinute);
    opt.cv_folds = folds;
    const ThreePhasePredictor tpp(opt);

    const auto bayes_factory = [&opt]() -> PredictorPtr {
      return std::make_unique<BayesPredictor>(opt.prediction);
    };
    const auto meta3_factory = [&opt]() -> PredictorPtr {
      auto meta = std::make_unique<MetaLearner>(opt.prediction, opt.meta);
      meta->add_base(
          std::make_unique<RulePredictor>(opt.prediction, opt.rule),
          /*treat_as_rule_like=*/true);
      meta->add_base(std::make_unique<BayesPredictor>(opt.prediction),
                     /*treat_as_rule_like=*/true);
      PredictionConfig stat_config = opt.prediction;
      stat_config.lead = 5 * kMinute;
      stat_config.window = kHour;
      meta->add_base(std::make_unique<StatisticalPredictor>(
                         stat_config, opt.statistical),
                     /*treat_as_rule_like=*/false);
      return meta;
    };

    TextTable table;
    table.set_header({"configuration", "precision", "recall", "F1"});
    const struct {
      const char* name;
      CvResult cv;
    } rows[] = {
        {"statistical alone",
         tpp.evaluate(prepared.log, Method::kStatistical)},
        {"rule alone", tpp.evaluate(prepared.log, Method::kRule)},
        {"bayes alone",
         cross_validate(prepared.log, folds, bayes_factory)},
        {"meta (stat + rule)", tpp.evaluate(prepared.log, Method::kMeta)},
        {"meta (stat + rule + bayes)",
         cross_validate(prepared.log, folds, meta3_factory)},
    };
    std::printf("%s (30 min prediction window):\n", profile);
    for (const auto& row : rows) {
      table.add_row({row.name, TextTable::num(row.cv.macro_precision, 4),
                     TextTable::num(row.cv.macro_recall, 4),
                     TextTable::num(row.cv.macro_f1(), 4)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
