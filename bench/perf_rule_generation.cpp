// google-benchmark for the §3.3 cost claim: "the rule generation process
// varies from 35 seconds for a 5-minute prediction window to 167 seconds
// for a 1-hour prediction window; the rule matching process is trivial.
// Therefore it is practical to deploy the meta-learner as an online
// prediction engine."
//
// We measure end-to-end rule generation (event-set extraction + mining +
// combination) as the window sweeps 5..60 minutes, plus single-event
// match latency. Absolute times are hardware-dependent (2007 testbed vs
// now); the claim to reproduce is the ~5x growth across the sweep and
// matching being orders of magnitude cheaper.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "mining/event_sets.hpp"
#include "predict/rule_predictor.hpp"

using namespace bglpred;
using namespace bglpred::bench;

namespace {

constexpr double kScale = 0.3;

void BM_RuleGeneration(benchmark::State& state) {
  const Duration window = state.range(0) * kMinute;
  const PreparedLog& prepared = prepared_log("ANL", kScale);
  RuleOptions options;
  std::size_t rules = 0;
  for (auto _ : state) {
    const TransactionDb db =
        extract_event_sets(prepared.log, window, nullptr);
    const RuleSet set = mine_rules(db, options);
    rules = set.size();
    benchmark::DoNotOptimize(rules);
  }
  state.counters["rules"] = static_cast<double>(rules);
}

// Extraction alone, to attribute the end-to-end split between event-set
// construction and mining.
void BM_EventSetExtraction(benchmark::State& state) {
  const Duration window = state.range(0) * kMinute;
  const PreparedLog& prepared = prepared_log("ANL", kScale);
  std::size_t sets = 0;
  for (auto _ : state) {
    const TransactionDb db =
        extract_event_sets(prepared.log, window, nullptr);
    sets = db.size();
    benchmark::DoNotOptimize(sets);
  }
  state.counters["event_sets"] = static_cast<double>(sets);
}

void BM_RuleMatching(benchmark::State& state) {
  const PreparedLog& prepared = prepared_log("ANL", kScale);
  PredictionConfig config;
  config.window = 30 * kMinute;
  RulePredictor predictor(config, {});
  predictor.train(prepared.log);
  predictor.reset();
  // Replay a slice of the log through the trained matcher.
  const auto& records = prepared.log.records();
  std::size_t i = 0;
  std::size_t warnings = 0;
  for (auto _ : state) {
    const auto w = predictor.observe(records[i % records.size()]);
    warnings += w.has_value();
    benchmark::DoNotOptimize(warnings);
    ++i;
  }
  state.counters["warnings"] = static_cast<double>(warnings);
}

}  // namespace

BENCHMARK(BM_RuleGeneration)
    ->Arg(5)
    ->Arg(15)
    ->Arg(30)
    ->Arg(45)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EventSetExtraction)
    ->Arg(5)
    ->Arg(30)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RuleMatching)->Unit(benchmark::kMicrosecond);

BGL_BENCH_MAIN("perf_rule_generation")
