// Reproduces Figure 2: "CDF of Failure Probability" — the cumulative
// distribution of the time until the next failure, for the compressed
// fatal-event streams of both logs. The paper's observation: a
// significant number of failures happen in close proximity, dominated by
// network and I/O-stream failures.
//
// Usage: fig2_failure_cdf [--scale=1.0] [--csv=path]

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "stats/interarrival.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  print_header("Figure 2", "CDF of inter-failure gaps", scale);

  const Duration points[] = {1 * kMinute,  5 * kMinute,  10 * kMinute,
                             15 * kMinute, 30 * kMinute, 1 * kHour,
                             2 * kHour,    4 * kHour,    8 * kHour,
                             1 * kDay,     2 * kDay,     7 * kDay};

  const PreparedLog& anl = prepared_log("ANL", scale);
  const PreparedLog& sdsc = prepared_log("SDSC", scale);
  const Ecdf anl_cdf = fatal_gap_cdf(anl.log);
  const Ecdf sdsc_cdf = fatal_gap_cdf(sdsc.log);

  TextTable table;
  table.set_header({"gap <=", "ANL CDF", "SDSC CDF"});
  CsvWriter csv({"gap_seconds", "anl_cdf", "sdsc_cdf"});
  for (const Duration d : points) {
    const double a = anl_cdf.eval(static_cast<double>(d));
    const double s = sdsc_cdf.eval(static_cast<double>(d));
    table.add_row(
        {format_duration(d), TextTable::num(a, 4), TextTable::num(s, 4)});
    csv.add_row({std::to_string(d), TextTable::num(a, 6),
                 TextTable::num(s, 6)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nmedian gap: ANL %s, SDSC %s  (sample sizes %zu / %zu)\n",
      format_duration(static_cast<Duration>(anl_cdf.quantile(0.5))).c_str(),
      format_duration(static_cast<Duration>(sdsc_cdf.quantile(0.5)))
          .c_str(),
      anl_cdf.sample_size(), sdsc_cdf.sample_size());

  // The paper attributes close-proximity failures mostly to network and
  // iostream categories; report the share of short gaps whose *follower*
  // is in those classes.
  for (const auto* p : {&anl, &sdsc}) {
    std::size_t short_gaps = 0;
    std::size_t short_netio = 0;
    TimePoint prev = -1;
    for (const RasRecord& rec : p->log.records()) {
      if (!rec.fatal()) {
        continue;
      }
      if (prev >= 0 && rec.time - prev <= kHour) {
        ++short_gaps;
        const MainCategory main = catalog().info(rec.subcategory).main;
        if (main == MainCategory::kNetwork ||
            main == MainCategory::kIostream) {
          ++short_netio;
        }
      }
      prev = rec.time;
    }
    std::printf("%s: %.1f%% of failures within 1h of the previous one are "
                "network/iostream\n",
                p == &anl ? "ANL" : "SDSC",
                short_gaps == 0 ? 0.0
                                : 100.0 * static_cast<double>(short_netio) /
                                      static_cast<double>(short_gaps));
  }

  if (args.has("csv")) {
    csv.write_file(args.get("csv", "fig2.csv"));
    std::printf("wrote %s\n", args.get("csv", "fig2.csv").c_str());
  }
  return 0;
}
