// Reproduces Figure 5: "Meta-learning Results (left ANL, right SDSC)" —
// precision and recall of the coverage-based meta-learner across
// prediction windows, next to both base predictors.
//
// Paper: ANL precision 0.88 -> 0.65 while recall rises 0.64 -> 0.78 as
// the window grows 5 min -> 1 h; SDSC precision 0.99 -> 0.89 with recall
// ~0.65 throughout. Key comparative claims: meta recall >= either base
// at every window; overall accuracy boost up to ~3x over a single base.
//
// Usage: fig5_meta_learning [--scale=1.0] [--folds=10] [--csv=path]

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 1.0);
  const auto folds = static_cast<std::size_t>(args.get_int("folds", 10));
  print_header("Figure 5", "Meta-learning vs prediction window", scale);

  const Duration windows[] = {5 * kMinute,  15 * kMinute, 30 * kMinute,
                              45 * kMinute, 60 * kMinute};
  CsvWriter csv({"profile", "window_minutes", "method", "precision",
                 "recall"});
  for (const char* profile : {"ANL", "SDSC"}) {
    const PreparedLog& prepared = prepared_log(profile, scale);
    std::printf("%s:\n", profile);
    TextTable table;
    table.set_header({"window", "meta P", "meta R", "rule P", "rule R",
                      "stat P", "stat R"});
    for (const Duration w : windows) {
      ThreePhaseOptions opt = paper_options(profile, w);
      opt.cv_folds = folds;
      const ThreePhasePredictor tpp(opt);
      const CvResult meta = tpp.evaluate(prepared.log, Method::kMeta);
      const CvResult rule = tpp.evaluate(prepared.log, Method::kRule);
      const CvResult stat =
          tpp.evaluate(prepared.log, Method::kStatistical);
      table.add_row({format_duration(w),
                     TextTable::num(meta.macro_precision, 4),
                     TextTable::num(meta.macro_recall, 4),
                     TextTable::num(rule.macro_precision, 4),
                     TextTable::num(rule.macro_recall, 4),
                     TextTable::num(stat.macro_precision, 4),
                     TextTable::num(stat.macro_recall, 4)});
      const struct {
        const char* name;
        const CvResult* cv;
      } series[] = {{"meta", &meta}, {"rule", &rule}, {"stat", &stat}};
      for (const auto& s : series) {
        csv.add_row({profile, std::to_string(w / kMinute), s.name,
                     TextTable::num(s.cv->macro_precision, 6),
                     TextTable::num(s.cv->macro_recall, 6)});
      }
    }
    std::fputs(table.render().c_str(), stdout);
    if (std::string(profile) == "ANL") {
      std::printf("  paper meta: P 0.88->0.65, R 0.64->0.78\n\n");
    } else {
      std::printf("  paper meta: P 0.99->0.89, R ~0.65\n\n");
    }
  }
  if (args.has("csv")) {
    csv.write_file(args.get("csv", "fig5.csv"));
  }
  return 0;
}
