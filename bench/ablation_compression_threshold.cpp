// Ablation for the §3.1 threshold choice: the paper uses 300 s for both
// temporal and spatial compression, noting that larger thresholds do not
// significantly increase FAILURE-event compression while risking
// distinct events being merged. This sweep reproduces that analysis.
//
// Usage: ablation_compression_threshold [--scale=0.5]

#include "bench_common.hpp"
#include "preprocess/pipeline.hpp"
#include "simgen/generator.hpp"

using namespace bglpred;
using namespace bglpred::bench;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.5);
  print_header("Ablation (§3.1)", "Compression-threshold sweep", scale);

  const Duration thresholds[] = {30,   60,   150,  300,
                                 600,  1200, 3600};
  for (const char* profile : {"ANL", "SDSC"}) {
    std::printf("%s:\n", profile);
    TextTable table;
    table.set_header({"threshold", "unique events", "unique fatal",
                      "compression", "fatal merged vs 300s"});
    // Baseline fatal count at the paper's 300 s threshold.
    std::size_t fatal_at_300 = 0;
    std::vector<std::pair<Duration, PreprocessStats>> results;
    for (const Duration threshold : thresholds) {
      GeneratedLog g =  // repo-lint: allow(simgen-materialize)
          LogGenerator(profile_by_name(profile)).generate(scale);
      PreprocessOptions opt;
      opt.temporal_threshold = threshold;
      opt.spatial_threshold = threshold;
      const PreprocessStats stats = preprocess(g.log, opt);
      if (threshold == 300) {
        fatal_at_300 = stats.unique_fatal_events;
      }
      results.emplace_back(threshold, stats);
    }
    for (const auto& [threshold, stats] : results) {
      const double delta =
          fatal_at_300 == 0
              ? 0.0
              : 100.0 *
                    (static_cast<double>(stats.unique_fatal_events) -
                     static_cast<double>(fatal_at_300)) /
                    static_cast<double>(fatal_at_300);
      table.add_row(
          {format_duration(threshold),
           TextTable::count(static_cast<std::int64_t>(stats.unique_events)),
           TextTable::count(
               static_cast<std::int64_t>(stats.unique_fatal_events)),
           TextTable::num(100.0 * (1.0 -
                                   static_cast<double>(stats.unique_events) /
                                       static_cast<double>(
                                           stats.raw_records)),
                          2) +
               "%",
           TextTable::num(delta, 2) + "%"});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("  paper choice: 5m (300 s) — fatal-event compression "
                "saturates beyond it\n\n");
  }
  return 0;
}
