// google-benchmark: streamed synthetic-log generation (EXPERIMENTS.md
// X14) — chunked pull-cursor throughput vs the materializing oracle,
// random chunk access, and the fleet-profile stream.
//
//   $ ./perf_simgen                    # full sweep, emits BENCH_simgen.json
//   $ ./perf_simgen --smoke            # CI gate: streamed==oracle
//                                      # differential + seek
//                                      # reproducibility + constant-RSS
//                                      # fleet generation + throughput
//                                      # floor vs the committed baseline
//   $ ./perf_simgen --write-baseline   # regenerate the committed
//                                      # baseline JSON
#include <benchmark/benchmark.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/crc32.hpp"
#include "simgen/stream.hpp"

using namespace bglpred;

namespace {

/// --smoke shrinks the workloads; set in main() before benchmarks run.
bool g_smoke = false;

#ifndef BGL_SIMGEN_BASELINE_PATH
#define BGL_SIMGEN_BASELINE_PATH "BENCH_simgen_baseline.json"
#endif

/// Content checksum of one batch: every canonical-order field plus the
/// entry text, so two batches match iff they hold identical records.
std::uint32_t batch_crc(const RasLog& log, std::uint32_t crc,
                        std::string& scratch) {
  char digits[32];
  for (const RasRecord& rec : log.records()) {
    scratch.clear();
    const auto append_num = [&](std::int64_t v) {
      const auto [p, ec] = std::to_chars(digits, digits + sizeof digits, v);
      (void)ec;
      scratch.append(digits, p);
      scratch.push_back('|');
    };
    append_num(rec.time);
    append_num(static_cast<std::int64_t>(rec.location.rack));
    append_num(static_cast<std::int64_t>(rec.location.midplane));
    append_num(static_cast<std::int64_t>(rec.location.node_card));
    append_num(static_cast<std::int64_t>(rec.location.unit));
    append_num(static_cast<std::int64_t>(rec.location.kind));
    append_num(static_cast<std::int64_t>(rec.severity));
    append_num(static_cast<std::int64_t>(rec.facility));
    append_num(static_cast<std::int64_t>(rec.event_type));
    append_num(static_cast<std::int64_t>(rec.job));
    scratch += log.text_of(rec);
    crc = crc32(scratch, crc);
  }
  return crc;
}

struct DrainResult {
  std::size_t records = 0;
  std::size_t chunks = 0;
  std::uint32_t crc = 0;
  GroundTruth truth;
};

DrainResult drain_stream(StreamingGenerator& gen, bool with_crc) {
  DrainResult out;
  RecordBatch batch;
  std::string scratch;
  while (gen.next(batch)) {
    out.records += batch.log.size();
    ++out.chunks;
    if (with_crc) {
      out.crc = batch_crc(batch.log, out.crc, scratch);
    }
    accumulate_truth(out.truth, batch.truth);
  }
  return out;
}

/// Resident-set sample from /proc/self/status, in KiB (0 if unreadable).
std::size_t vm_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(
          std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

// ---- benchmarks ----------------------------------------------------------

/// Streamed generation end to end: the records/s of the pull cursor.
void BM_StreamGenerate(benchmark::State& state) {
  StreamConfig config;
  config.scale = g_smoke ? 0.02 : 0.2;
  std::size_t records = 0;
  for (auto _ : state) {
    StreamingGenerator gen(SystemProfile::anl(), config);
    records = drain_stream(gen, /*with_crc=*/false).records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  state.counters["records"] = static_cast<double>(records);
}

/// The materializing oracle on the same span — the memory-unbounded
/// shape the streamed path replaces, kept as the throughput reference.
void BM_OracleGenerate(benchmark::State& state) {
  const double scale = g_smoke ? 0.02 : 0.2;
  std::size_t records = 0;
  for (auto _ : state) {
    // repo-lint: allow(simgen-materialize)
    const GeneratedLog g = LogGenerator(SystemProfile::anl()).generate(scale);
    records = g.log.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  state.counters["records"] = static_cast<double>(records);
}

/// Random chunk access: seek to the middle of the span and produce one
/// chunk — the recomputation property's price tag.
void BM_SeekChunk(benchmark::State& state) {
  StreamConfig config;
  config.scale = g_smoke ? 0.05 : 0.5;
  StreamingGenerator gen(SystemProfile::anl(), config);
  const std::size_t mid = gen.chunk_count() / 2;
  RecordBatch batch;
  std::size_t records = 0;
  for (auto _ : state) {
    gen.seek_chunk(mid);
    gen.next(batch);
    records = batch.log.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  state.counters["records"] = static_cast<double>(records);
}

/// The 64-rack fleet profile with every modulator armed — the workload
/// whose whole-log form does not fit a sane RSS budget.
void BM_StreamGenerateFleet(benchmark::State& state) {
  StreamConfig config;
  config.scale = g_smoke ? 0.01 : 0.05;
  std::size_t records = 0;
  for (auto _ : state) {
    StreamingGenerator gen(SystemProfile::dc_prophet(), config);
    records = drain_stream(gen, /*with_crc=*/false).records;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
  state.counters["records"] = static_cast<double>(records);
}

// ---- the committed throughput baseline -----------------------------------

/// Minimal field extraction — the baseline file is flat JSON this
/// binary itself wrote.
double baseline_records_per_sec(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0.0;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::string key = "\"records_per_sec\":";
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) {
    return 0.0;
  }
  return std::strtod(text.c_str() + pos + key.size(), nullptr);
}

/// Streamed records/s on the fixed baseline workload (ANL, scale 0.02 —
/// the same config whether or not --smoke is set, so the committed
/// number and the CI probe always measure the same work).
double throughput_probe() {
  StreamConfig config;
  config.scale = 0.02;
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    StreamingGenerator gen(SystemProfile::anl(), config);
    const DrainResult r = drain_stream(gen, /*with_crc=*/false);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    best = std::max(best, static_cast<double>(r.records) / std::max(s, 1e-9));
  }
  return best;
}

int write_baseline(const std::string& path) {
  const double rps = throughput_probe();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "write-baseline: cannot open %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"name\": \"simgen_stream_baseline\",\n"
      << "  \"workload\": \"anl_scale_0.02\",\n"
      << "  \"records_per_sec\": " << static_cast<std::uint64_t>(rps) << "\n"
      << "}\n";
  std::printf("write-baseline: streamed %.0f records/s -> %s\n", rps,
              path.c_str());
  return 0;
}

// ---- CI gate -------------------------------------------------------------

/// Four gates, in dependency order: (1) streamed output is record-for-
/// record identical to the materializing oracle; (2) seeking straight
/// to a chunk reproduces the sequential cursor's batch bit-for-bit;
/// (3) streaming the fleet profile holds RSS flat after warmup — the
/// O(chunk) memory claim; (4) streamed throughput clears the committed
/// baseline floor.
int run_smoke() {
  // Gate 1: differential identity, checksum form (the field-by-field
  // comparison lives in tests/test_simgen_stream.cpp; this re-checks
  // the release binary end to end and pins ground-truth aggregation).
  const double scale = 0.01;
  StreamConfig config;
  config.scale = scale;
  StreamingGenerator gen(SystemProfile::anl(), config);
  const DrainResult streamed = drain_stream(gen, /*with_crc=*/true);
  // repo-lint: allow(simgen-materialize)
  const GeneratedLog oracle = LogGenerator(SystemProfile::anl()).generate(scale);
  std::string scratch;
  const std::uint32_t oracle_crc = batch_crc(oracle.log, 0, scratch);
  if (streamed.records != oracle.log.size() || streamed.crc != oracle_crc) {
    std::fprintf(stderr,
                 "smoke: streamed %zu records (crc %08x) != oracle %zu "
                 "(crc %08x)\n",
                 streamed.records, streamed.crc, oracle.log.size(),
                 oracle_crc);
    return 1;
  }
  if (streamed.truth.fatal_occurrences.size() !=
          oracle.truth.fatal_occurrences.size() ||
      streamed.truth.unique_events != oracle.truth.unique_events) {
    std::fprintf(stderr,
                 "smoke: truth mismatch (%zu/%zu fatals, %zu/%zu uniques)\n",
                 streamed.truth.fatal_occurrences.size(),
                 oracle.truth.fatal_occurrences.size(),
                 streamed.truth.unique_events, oracle.truth.unique_events);
    return 1;
  }
  std::printf("smoke: differential OK — %zu records over %zu chunks, "
              "crc %08x\n",
              streamed.records, streamed.chunks, streamed.crc);

  // Gate 2: seek_chunk(k) == sequential chunk k, on first/middle/last.
  std::vector<std::uint32_t> sequential(gen.chunk_count(), 0);
  {
    StreamingGenerator seq(SystemProfile::anl(), config);
    RecordBatch batch;
    while (seq.next(batch)) {
      sequential[batch.chunk] = batch_crc(batch.log, 0, scratch);
    }
  }
  for (const std::size_t k :
       {std::size_t{0}, gen.chunk_count() / 2, gen.chunk_count() - 1}) {
    StreamingGenerator seeker(SystemProfile::anl(), config);
    seeker.seek_chunk(k);
    RecordBatch batch;
    if (!seeker.next(batch) || batch.chunk != k ||
        batch_crc(batch.log, 0, scratch) != sequential[k]) {
      std::fprintf(stderr, "smoke: seek_chunk(%zu) does not reproduce the "
                   "sequential batch\n", k);
      return 1;
    }
  }
  std::printf("smoke: seek reproducibility OK over %zu chunks\n",
              gen.chunk_count());

  // Gate 3: constant RSS on the fleet profile. Warm up a few chunks
  // (allocator pools, job cache, scratch growth), then the rest of the
  // run must not grow the resident set — the streamed cursor holds one
  // chunk window regardless of how much log has been produced.
  StreamConfig fleet;
  fleet.scale = g_smoke ? 0.04 : 0.1;
  StreamingGenerator fgen(SystemProfile::dc_prophet(), fleet);
  RecordBatch batch;
  std::size_t fleet_records = 0;
  std::size_t warm_rss_kb = 0;
  const std::size_t warmup = 3;
  const auto t0 = std::chrono::steady_clock::now();
  while (fgen.next(batch)) {
    fleet_records += batch.log.size();
    if (batch.chunk + 1 == warmup) {
      warm_rss_kb = vm_rss_kb();
    }
  }
  const double fleet_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const std::size_t end_rss_kb = vm_rss_kb();
  // The perf bounds (this RSS gate and the throughput floor below) only
  // bind uninstrumented builds — the same split the serve chaos harness
  // uses. Under ASan, VmRSS tracks shadow memory and quarantine growth
  // rather than the generator's working set (~60 MiB of sanitizer
  // bookkeeping vs ~1.5 MiB of real growth in release), and sanitizer
  // slowdowns turn the throughput floor into a measurement of the
  // instrumentation. The differential and seek gates still run under
  // sanitizers; the release job owns the perf bounds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr bool kPerfGatesBind = false;
#else
  constexpr bool kPerfGatesBind = true;
#endif
  const std::size_t allowance_kb = 48 * 1024;
  std::printf("smoke: fleet stream %zu records / %zu chunks in %.2fs, "
              "rss %zu -> %zu KiB\n",
              fleet_records, fgen.chunk_count(), fleet_s, warm_rss_kb,
              end_rss_kb);
  if (fgen.chunk_count() <= warmup || warm_rss_kb == 0) {
    std::fprintf(stderr, "smoke: fleet run too short to gate RSS\n");
    return 1;
  }
  if (end_rss_kb > warm_rss_kb + allowance_kb) {
    if (kPerfGatesBind) {
      std::fprintf(stderr,
                   "smoke: RSS grew %zu KiB -> %zu KiB (> %zu KiB allowance); "
                   "the stream is materializing\n",
                   warm_rss_kb, end_rss_kb, allowance_kb);
      return 1;
    }
    std::printf("smoke: RSS gate skipped under sanitizer (%zu -> %zu KiB)\n",
                warm_rss_kb, end_rss_kb);
  }

  // Gate 4: throughput floor against the committed baseline. Generous
  // margin — CI boxes vary; halving throughput means the windowed
  // recomputation regressed structurally, not noise.
  const double rps = throughput_probe();
  const double committed = baseline_records_per_sec(BGL_SIMGEN_BASELINE_PATH);
  std::printf("smoke: streamed %.0f records/s (committed baseline %.0f)\n",
              rps, committed);
  if (committed <= 0.0) {
    std::fprintf(stderr, "smoke: note: no committed baseline at %s\n",
                 BGL_SIMGEN_BASELINE_PATH);
  } else if (rps < 0.5 * committed) {
    if (kPerfGatesBind) {
      std::fprintf(stderr,
                   "smoke: streamed throughput %.0f below floor %.0f\n", rps,
                   0.5 * committed);
      return 1;
    }
    std::printf("smoke: throughput floor skipped under sanitizer\n");
  }
  return 0;
}

}  // namespace

BENCHMARK(BM_StreamGenerate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OracleGenerate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeekChunk)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StreamGenerateFleet)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  static char min_time[] = "--benchmark_min_time=0.01";
  bool baseline = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
      continue;
    }
    if (std::strcmp(argv[i], "--write-baseline") == 0) {
      baseline = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (baseline) {
    return write_baseline(BGL_SIMGEN_BASELINE_PATH);
  }
  if (g_smoke) {
    const int rc = run_smoke();
    if (rc != 0) {
      return rc;
    }
    // Still time every benchmark (tiny workloads) so BENCH_simgen.json
    // lands with all four rows.
    args.push_back(min_time);
  }
  return bglpred::bench::run_benchmark_driver(
      "simgen", static_cast<int>(args.size()), args.data());
}
