// JSON-emitting main() for the google-benchmark perf_* drivers.
//
// Kept out of bench_common.hpp on purpose: <benchmark/benchmark.h>
// registers static initializers, so merely including it links the
// benchmark library — and most bench drivers are plain CLI tools that
// do not (and must not) link it. Include this header only from targets
// in the BGL_BENCH_PERF list.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

namespace bglpred::bench {

/// Runs the registered benchmarks with machine-readable results on by
/// default: unless the caller already passed --benchmark_out, the run is
/// mirrored to BENCH_<name>.json (google-benchmark's JSON schema) in the
/// working directory, on top of the usual console table. Explicit
/// --benchmark_out / --benchmark_out_format flags win.
inline int run_benchmark_driver(const char* name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_";
  out_flag += name;
  out_flag += ".json";
  std::string format_flag = "--benchmark_out_format=json";
  bool caller_chose_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      caller_chose_out = true;
    }
  }
  if (!caller_chose_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bglpred::bench

/// BENCHMARK_MAIN() with BENCH_<name>.json output by default.
#define BGL_BENCH_MAIN(name)                                       \
  int main(int argc, char** argv) {                                \
    return bglpred::bench::run_benchmark_driver(name, argc, argv); \
  }
