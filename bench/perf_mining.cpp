// google-benchmark: Apriori vs FP-Growth mining throughput on event-set
// databases extracted from the calibrated ANL log — the internal-oracle
// pair (identical outputs, different asymptotics at low support).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "mining/apriori.hpp"
#include "mining/event_sets.hpp"
#include "mining/fpgrowth.hpp"

using namespace bglpred;
using namespace bglpred::bench;

namespace {

const TransactionDb& anl_event_sets(Duration window) {
  static std::map<Duration, TransactionDb> cache;
  auto it = cache.find(window);
  if (it == cache.end()) {
    const PreparedLog& prepared = prepared_log("ANL", 0.3);
    it = cache
             .emplace(window,
                      extract_event_sets(prepared.log, window, nullptr))
             .first;
  }
  return it->second;
}

void BM_Apriori(benchmark::State& state) {
  const Duration window = state.range(0) * kMinute;
  const double support = static_cast<double>(state.range(1)) / 1000.0;
  const TransactionDb& db = anl_event_sets(window);
  MiningOptions options;
  options.min_support = support;
  std::size_t found = 0;
  for (auto _ : state) {
    const FrequentSet result = apriori(db, options);
    found = result.size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["transactions"] = static_cast<double>(db.size());
  state.counters["frequent"] = static_cast<double>(found);
}

// The pre-vertical-index horizontal counting path, kept as a live
// baseline so a single run shows the tidset-intersection speedup.
void BM_AprioriReference(benchmark::State& state) {
  const Duration window = state.range(0) * kMinute;
  const double support = static_cast<double>(state.range(1)) / 1000.0;
  const TransactionDb& db = anl_event_sets(window);
  MiningOptions options;
  options.min_support = support;
  std::size_t found = 0;
  for (auto _ : state) {
    const FrequentSet result = apriori_reference(db, options);
    found = result.size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["transactions"] = static_cast<double>(db.size());
  state.counters["frequent"] = static_cast<double>(found);
}

void BM_FpGrowth(benchmark::State& state) {
  const Duration window = state.range(0) * kMinute;
  const double support = static_cast<double>(state.range(1)) / 1000.0;
  const TransactionDb& db = anl_event_sets(window);
  MiningOptions options;
  options.min_support = support;
  std::size_t found = 0;
  for (auto _ : state) {
    const FrequentSet result = fpgrowth(db, options);
    found = result.size();
    benchmark::DoNotOptimize(found);
  }
  state.counters["transactions"] = static_cast<double>(db.size());
  state.counters["frequent"] = static_cast<double>(found);
}

}  // namespace

// Args: {rule-gen window minutes, min support x1000}.
BENCHMARK(BM_Apriori)
    ->Args({15, 40})
    ->Args({15, 20})
    ->Args({15, 10})
    ->Args({60, 40})
    ->Args({60, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AprioriReference)
    ->Args({15, 10})
    ->Args({60, 10})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FpGrowth)
    ->Args({15, 40})
    ->Args({15, 20})
    ->Args({15, 10})
    ->Args({60, 40})
    ->Args({60, 10})
    ->Unit(benchmark::kMillisecond);

BGL_BENCH_MAIN("perf_mining")
